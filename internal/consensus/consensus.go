// Package consensus implements a self-contained Raft-style replicated log
// for the platform's control plane: leader election with randomized
// timeouts, log replication with conflict-index divergence repair,
// quorum commit-index advancement, and snapshot/compaction so a fresh or
// long-dead replica catches up from a compacted leader. All messages cross
// the internal/netsim faultable transport, so every RPC can be dropped,
// delayed, duplicated, or partitioned deterministically from a seed — the
// same fault model the data path already runs under.
//
// The design follows Raft (Ongaro & Ousterhout) restricted to what the
// control plane needs: a fixed membership set, in-memory durable state
// (stable storage is modelled by state surviving Stop/Restart), and
// synchronous per-peer RPC rounds driven by a single ticker goroutine per
// node, which keeps a seeded run's message schedule reproducible. A leader
// additionally maintains a quorum lease — refreshed every heartbeat round
// acknowledged by a majority — that the cluster controller uses to keep the
// transaction data path off the consensus critical path: reads and writes
// route from leader-local state while the lease holds, and only control
// mutations pay a log round trip.
package consensus

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sdp/internal/netsim"
	"sdp/internal/obs"
)

// Errors surfaced by proposals and group operations.
var (
	// ErrNotLeader is returned by Propose/ProposeWait on a node that is not
	// the current leader; the caller should redirect to the leader hint.
	ErrNotLeader = errors.New("consensus: not the leader")

	// ErrStopped is returned by operations on a stopped node.
	ErrStopped = errors.New("consensus: node stopped")

	// ErrProposalLost means the proposed entry was overwritten by a new
	// leader before committing; the command did not and will not apply from
	// that proposal. Safe to re-propose.
	ErrProposalLost = errors.New("consensus: proposal lost to a new leader")

	// ErrProposalTimeout means the proposal did not commit within the
	// caller's deadline; its outcome is unknown (it may still commit), so
	// only idempotent commands should be re-proposed.
	ErrProposalTimeout = errors.New("consensus: proposal timed out")

	// errPeerDown is the transport-level error for RPCs delivered to a
	// stopped or unregistered node — the moral equivalent of a connection
	// refused by a dead process.
	errPeerDown = errors.New("consensus: peer down")
)

// StateMachine is the deterministic state machine a node applies committed
// entries to. Apply, Snapshot, and Restore are always invoked from a single
// goroutine per node, in log order.
type StateMachine interface {
	// Apply applies one committed command and returns a result delivered to
	// the local proposer, if any. It must be deterministic: every replica
	// applying the same log prefix must reach the same state.
	Apply(index uint64, cmd []byte) any
	// Snapshot encodes the full current state for log compaction.
	Snapshot() []byte
	// Restore replaces the state from a snapshot taken by another replica.
	Restore(data []byte)
}

// Config configures one consensus node.
type Config struct {
	// ID is the node's name and its netsim endpoint.
	ID string
	// Peers lists every member of the group, including this node.
	Peers []string
	// ElectionTimeout is the base election timeout T; each node waits a
	// randomized T + [0, T) of leader silence before campaigning. Default
	// 60ms.
	ElectionTimeout time.Duration
	// Heartbeat is the leader's replication/heartbeat interval. Default
	// ElectionTimeout/5.
	Heartbeat time.Duration
	// SnapshotThreshold is how many applied entries accumulate past the
	// last snapshot before the log compacts. Default 256.
	SnapshotThreshold int
	// Seed seeds the node's private PRNG (election-timeout randomization).
	Seed int64
	// Manual disables the background ticker and apply goroutines: tests
	// drive the node deterministically with Campaign, Heartbeat, and
	// DrainApply.
	Manual bool
	// OnLeader, when non-nil, is called from a fresh goroutine each time
	// this node wins an election, with the term it won.
	OnLeader func(term uint64)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 60 * time.Millisecond
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.ElectionTimeout / 5
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Millisecond
	}
	if c.SnapshotThreshold <= 0 {
		c.SnapshotThreshold = 256
	}
	return c
}

// Group is one consensus cluster: the set of nodes plus the shared netsim
// transport and metrics. Nodes register into the group at construction and
// exchange RPCs through it, so a test (or the chaos harness) can partition,
// fault, or kill any member by endpoint name.
type Group struct {
	net     *netsim.Network
	metrics *groupMetrics

	mu    sync.Mutex
	order []string
	nodes map[string]*Node
}

// NewGroup creates an empty consensus group over the given network (nil is
// a perfect in-process network) registering consensus_* metrics on reg (nil
// gives the group a private registry).
func NewGroup(net *netsim.Network, reg *obs.Registry) *Group {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	g := &Group{
		net:     net,
		metrics: newGroupMetrics(reg),
		nodes:   make(map[string]*Node),
	}
	reg.OnSnapshot(g.bridge)
	return g
}

// Add creates a node from cfg, attaches it to sm, registers it in the
// group, and (unless cfg.Manual) starts its background goroutines.
func (g *Group) Add(cfg Config, sm StateMachine) *Node {
	n := newNode(g, cfg, sm)
	g.mu.Lock()
	if _, dup := g.nodes[n.id]; dup {
		g.mu.Unlock()
		panic(fmt.Sprintf("consensus: duplicate node id %q", n.id))
	}
	g.nodes[n.id] = n
	g.order = append(g.order, n.id)
	g.mu.Unlock()
	if !n.cfg.Manual {
		n.start()
	}
	return n
}

// Node returns the registered node with the given id, or nil.
func (g *Group) Node(id string) *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.nodes[id]
}

// Nodes returns the group's nodes in registration order.
func (g *Group) Nodes() []*Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Node, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.nodes[id])
	}
	return out
}

// Leader returns the live node currently acting as leader (the one with
// the highest term if a stale leader has not yet stepped down), or nil when
// the group is leaderless.
func (g *Group) Leader() *Node {
	var best *Node
	var bestTerm uint64
	for _, n := range g.Nodes() {
		if term, ok := n.leaderAt(); ok && (best == nil || term > bestTerm) {
			best, bestTerm = n, term
		}
	}
	return best
}

// LeaderID returns the leader's id and term, or ("", 0) when leaderless.
func (g *Group) LeaderID() (string, uint64) {
	if n := g.Leader(); n != nil {
		t, _ := n.leaderAt()
		return n.id, t
	}
	return "", 0
}

// Stop stops every node in the group.
func (g *Group) Stop() {
	for _, n := range g.Nodes() {
		n.Stop()
	}
}

// rpc delivers one RPC from node `from` to node `to` across the simulated
// network. fn runs at the receiver (or twice, when netsim duplicates an
// idempotent delivery — all consensus RPCs are idempotent by design). A
// stopped receiver refuses the call like a dead process would.
func (g *Group) rpc(from, to, op string, fn func(peer *Node) error) error {
	deliver := func() error {
		peer := g.Node(to)
		if peer == nil {
			return errPeerDown
		}
		return fn(peer)
	}
	link := g.net.Link(from, to)
	if link == nil {
		return deliver()
	}
	return link.Call(op, true, deliver)
}

// bridge refreshes the gauge family on registry snapshots: the highest term
// seen, the highest commit index, and the commit lag (highest commit minus
// the lowest applied index across live nodes — how far the slowest live
// replica's state machine trails the group).
func (g *Group) bridge() {
	var maxTerm, maxCommit uint64
	minApplied := ^uint64(0)
	live := false
	for _, n := range g.Nodes() {
		term, commit, applied, stopped := n.progress()
		if term > maxTerm {
			maxTerm = term
		}
		if commit > maxCommit {
			maxCommit = commit
		}
		if !stopped {
			live = true
			if applied < minApplied {
				minApplied = applied
			}
		}
	}
	g.metrics.term.Set(float64(maxTerm))
	g.metrics.commitIndex.Set(float64(maxCommit))
	if live {
		g.metrics.commitLag.Set(float64(maxCommit - minApplied))
	}
}
