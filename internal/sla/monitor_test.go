package sla

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sdp/internal/obs"
)

// fakeClock is a settable clock for deterministic window arithmetic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestMonitor builds a monitor with 1s windows, a small ring, and a fake
// clock starting at a fixed instant.
func newTestMonitor(windows int) (*Monitor, *fakeClock, *obs.Registry) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	reg := obs.NewRegistry()
	m := NewMonitor(reg, MonitorOptions{Window: time.Second, Windows: windows, Now: clk.now})
	return m, clk, reg
}

func TestMonitorThroughputViolation(t *testing.T) {
	m, clk, reg := newTestMonitor(10)
	m.Track("shop", SLA{MinThroughput: 10})

	// 3 commits in a window that demands 10 TPS.
	for i := 0; i < 3; i++ {
		m.ObserveCommit("shop", time.Millisecond)
	}
	clk.advance(time.Second) // close the window
	rep := m.Report()

	if len(rep.Databases) != 1 {
		t.Fatalf("got %d databases, want 1", len(rep.Databases))
	}
	d := rep.Databases[0]
	if d.Compliant {
		t.Error("3 TPS against a 10 TPS SLA should violate")
	}
	if d.Violations[ViolationThroughput] != 1 {
		t.Errorf("throughput violations = %d, want 1", d.Violations[ViolationThroughput])
	}
	if d.LastViolation == nil || d.LastViolation.Stats.TPS != 3 {
		t.Errorf("last violation = %+v, want stats with 3 TPS", d.LastViolation)
	}
	if got := reg.Snapshot().Counter("sla_violations_total", "db", "shop", "kind", ViolationThroughput); got != 1 {
		t.Errorf("sla_violations_total{db=shop,kind=throughput} = %d, want 1", got)
	}
	if got := rep.Violating(); len(got) != 1 || got[0] != "shop" {
		t.Errorf("Violating() = %v, want [shop]", got)
	}
}

func TestMonitorAvailabilityViolation(t *testing.T) {
	m, clk, _ := newTestMonitor(10)
	m.Track("shop", SLA{MaxRejectFraction: 0.25})

	// 1 reject in 2 attempts: fraction 0.5 > 0.25.
	m.ObserveCommit("shop", time.Millisecond)
	m.ObserveReject("shop")
	clk.advance(time.Second)
	d := m.Report().Databases[0]
	if d.Compliant || d.Violations[ViolationAvailability] != 1 {
		t.Errorf("0.5 rejected against a 0.25 bound should violate availability: %+v", d)
	}

	// Aborts are inherent failures, not rejections: they must not count
	// against the availability bound.
	m2, clk2, _ := newTestMonitor(10)
	m2.Track("shop", SLA{MaxRejectFraction: 0.25})
	m2.ObserveCommit("shop", time.Millisecond)
	m2.ObserveAbort("shop")
	m2.ObserveAbort("shop")
	clk2.advance(time.Second)
	if d := m2.Report().Databases[0]; !d.Compliant {
		t.Errorf("aborts alone must not violate availability: %+v", d)
	}
}

func TestMonitorLatencyViolation(t *testing.T) {
	m, clk, _ := newTestMonitor(10)
	m.Track("shop", SLA{MaxMeanLatency: 10 * time.Millisecond})

	m.ObserveCommit("shop", 5*time.Millisecond)
	m.ObserveCommit("shop", 50*time.Millisecond) // mean 27.5ms > 10ms
	clk.advance(time.Second)
	d := m.Report().Databases[0]
	if d.Compliant || d.Violations[ViolationLatency] != 1 {
		t.Errorf("27.5ms mean against a 10ms bound should violate latency: %+v", d)
	}

	// Zero MaxMeanLatency means unconstrained.
	m2, clk2, _ := newTestMonitor(10)
	m2.Track("shop", SLA{})
	m2.ObserveCommit("shop", time.Hour)
	clk2.advance(time.Second)
	if d := m2.Report().Databases[0]; !d.Compliant {
		t.Errorf("zero latency bound must not violate: %+v", d)
	}
}

func TestMonitorIdleWindowsSkipped(t *testing.T) {
	m, clk, _ := newTestMonitor(10)
	m.Track("shop", SLA{MinThroughput: 100})

	// Five windows pass with no offered load at all: min throughput applies
	// to offered load, so nothing violates and nothing is evaluated.
	clk.advance(5 * time.Second)
	d := m.Report().Databases[0]
	if !d.Compliant || d.WindowsEvaluated != 0 {
		t.Errorf("idle windows must be skipped, got %+v", d)
	}
}

func TestMonitorComplianceRecovery(t *testing.T) {
	const span = 4
	m, clk, _ := newTestMonitor(span)
	m.Track("shop", SLA{MinThroughput: 10})

	m.ObserveCommit("shop", time.Millisecond) // 1 TPS: violating window
	clk.advance(time.Second)
	if d := m.Report().Databases[0]; d.Compliant {
		t.Fatal("violating window should make the database non-compliant")
	}

	// The violation ages out once the retained span has passed.
	clk.advance((span + 1) * time.Second)
	if d := m.Report().Databases[0]; !d.Compliant {
		t.Errorf("violation older than the %d-window span should age out: %+v", span, d)
	}
	// History is preserved even after the verdict recovers.
	if d := m.Report().Databases[0]; d.WindowsViolated != 1 {
		t.Errorf("WindowsViolated = %d, want 1", d.WindowsViolated)
	}
}

func TestMonitorSlotRecycling(t *testing.T) {
	// A ring of 3 windows: writing into window 0 and window 3 reuses the
	// same slot; the old window's counts must not leak into the new one.
	m, clk, _ := newTestMonitor(3)
	m.Track("shop", SLA{MinThroughput: 2})

	for i := 0; i < 5; i++ {
		m.ObserveCommit("shop", time.Millisecond) // window 0: 5 TPS, clean
	}
	clk.advance(time.Second)
	if d := m.Report().Databases[0]; d.Compliant != true {
		t.Fatalf("window 0 should be clean: %+v", d)
	}

	clk.advance(2 * time.Second)              // now in window 3 = slot 0 again
	m.ObserveCommit("shop", time.Millisecond) // recycled slot: 1 TPS
	clk.advance(time.Second)
	d := m.Report().Databases[0]
	if d.WindowsEvaluated != 2 {
		t.Errorf("WindowsEvaluated = %d, want 2 (idle windows skipped)", d.WindowsEvaluated)
	}
	if d.Compliant || d.LastViolation == nil || d.LastViolation.Stats.Commits != 1 {
		t.Errorf("recycled slot must start from zero, got %+v", d.LastViolation)
	}
}

func TestMonitorReplicaSources(t *testing.T) {
	m, clk, _ := newTestMonitor(10)
	m.Track("shop", SLA{MinThroughput: 10})
	m.AddReplicaSource(func(db string) ([]string, bool) { return nil, false })
	m.AddReplicaSource(func(db string) ([]string, bool) {
		if db == "shop" {
			return []string{"m2", "m1"}, true
		}
		return nil, false
	})

	m.ObserveCommit("shop", time.Millisecond)
	clk.advance(time.Second)
	d := m.Report().Databases[0]
	if len(d.Machines) != 2 || d.Machines[0] != "m1" || d.Machines[1] != "m2" {
		t.Errorf("violating database should flag its hosting machines sorted, got %v", d.Machines)
	}
}

func TestMonitorUntrackedAndNil(t *testing.T) {
	m, _, _ := newTestMonitor(10)
	// Observations for untracked databases are dropped silently.
	m.ObserveCommit("ghost", time.Millisecond)
	m.ObserveAbort("ghost")
	m.ObserveReject("ghost")
	if rep := m.Report(); len(rep.Databases) != 0 {
		t.Errorf("untracked database must not appear in the report: %+v", rep)
	}

	// A nil monitor is a no-op everywhere, so controllers can call it
	// unconditionally.
	var nilMon *Monitor
	nilMon.Track("shop", SLA{})
	nilMon.ObserveCommit("shop", time.Millisecond)
	nilMon.ObserveAbort("shop")
	nilMon.ObserveReject("shop")
	nilMon.AddReplicaSource(func(string) ([]string, bool) { return nil, false })
	if rep := nilMon.Report(); len(rep.Databases) != 0 {
		t.Errorf("nil monitor report should be empty: %+v", rep)
	}
}

func TestMonitorSnapshotBridge(t *testing.T) {
	m, clk, reg := newTestMonitor(10)
	m.Track("shop", SLA{MinThroughput: 10})
	m.ObserveCommit("shop", time.Millisecond)
	clk.advance(time.Second)

	// A registry snapshot alone must evaluate the closed window and carry
	// both the violation counter and the compliance gauge.
	snap := reg.Snapshot()
	if got := snap.Counter("sla_violations_total", "db", "shop"); got != 1 {
		t.Errorf("snapshot sla_violations_total = %d, want 1", got)
	}
	if got := snap.Gauge("sla_compliance", "db", "shop"); got != 0 {
		t.Errorf("snapshot sla_compliance = %g, want 0", got)
	}
	if got := snap.Gauge("sla_observed_tps", "db", "shop"); got != 1 {
		t.Errorf("snapshot sla_observed_tps = %g, want 1", got)
	}
	if got := snap.Gauge("sla_tracked_databases"); got != 1 {
		t.Errorf("sla_tracked_databases = %g, want 1", got)
	}
	// The violation also lands in the trace ring under scope "sla".
	if evs := reg.Trace().EventsFiltered("sla", "shop"); len(evs) == 0 {
		t.Error("violation should emit a trace event with the db as correlation ID")
	}
}

func TestComplianceReportWriteText(t *testing.T) {
	m, clk, _ := newTestMonitor(10)
	m.Track("shop", SLA{MinThroughput: 10})
	m.ObserveCommit("shop", time.Millisecond)
	clk.advance(time.Second)

	var b strings.Builder
	m.Report().WriteText(&b)
	out := b.String()
	for _, want := range []string{"shop", "VIOLATING", "last violation"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
}

func TestMonitorConcurrentObserve(t *testing.T) {
	// Race smoke: concurrent observers against a rotating clock plus a
	// reporter. Run under -race via `make vet`.
	m, clk, reg := newTestMonitor(4)
	m.Track("shop", SLA{MinThroughput: 1})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.ObserveCommit("shop", time.Millisecond)
				m.ObserveAbort("shop")
				m.ObserveReject("shop")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			clk.advance(500 * time.Millisecond)
			m.Report()
			reg.Snapshot()
		}
	}()
	wg.Wait()
}
