package sla

import (
	"math"
	"sort"
)

// OptimalResult is the outcome of the exhaustive placement search.
type OptimalResult struct {
	// Machines is the minimum number of machines found.
	Machines int
	// Exact reports whether the search completed within the node budget;
	// when false, Machines is the best solution found so far (still an
	// upper bound on the optimum).
	Exact bool
	// Nodes is the number of search nodes explored.
	Nodes int
}

// Optimal computes the minimum number of identical machines (capacity cap)
// needed to host all databases, each with Replicas replicas on distinct
// machines — the offline exhaustive computation behind the "Optimal
// Solution" row of the paper's Table 2. It runs branch-and-bound with
// symmetry breaking (identical machines are interchangeable, so only the
// first unopened machine is ever considered for opening) and a per-dimension
// volume lower bound. nodeBudget caps the search (<=0 means a default of
// 2 million nodes).
func Optimal(dbs []Database, cap Resources, nodeBudget int) OptimalResult {
	if nodeBudget <= 0 {
		nodeBudget = 2_000_000
	}
	// Greedy FFD gives the initial upper bound.
	upper, _, err := PlaceAllFirstFitDecreasing(withUnitReplicas(dbs))
	if err != nil {
		// Some database exceeds a machine; no feasible packing.
		return OptimalResult{Machines: 0, Exact: false}
	}

	// Sort by decreasing dominant requirement: big items first prunes best.
	sorted := append([]Database{}, dbs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return maxDim(sorted[i].Req) > maxDim(sorted[j].Req)
	})

	// Suffix resource sums for the volume lower bound.
	suffix := make([]Resources, len(sorted)+1)
	for i := len(sorted) - 1; i >= 0; i-- {
		reps := sorted[i].Replicas
		if reps <= 0 {
			reps = 1
		}
		suffix[i] = suffix[i+1].Add(sorted[i].Req.Scale(float64(reps)))
	}

	s := &optSolver{dbs: sorted, cap: cap, suffix: suffix, best: upper, budget: nodeBudget, exact: true}
	s.solve(0, nil)
	return OptimalResult{Machines: s.best, Exact: s.exact, Nodes: s.nodes}
}

func withUnitReplicas(dbs []Database) []Database {
	out := make([]Database, len(dbs))
	for i, d := range dbs {
		if d.Replicas <= 0 {
			d.Replicas = 1
		}
		out[i] = d
	}
	return out
}

type optSolver struct {
	dbs    []Database
	cap    Resources
	suffix []Resources
	best   int
	nodes  int
	budget int
	exact  bool
}

func (s *optSolver) solve(i int, open []Resources) {
	if s.nodes >= s.budget {
		s.exact = false
		return
	}
	s.nodes++
	if len(open) >= s.best {
		return
	}
	if i == len(s.dbs) {
		s.best = len(open)
		return
	}
	// Volume lower bound: remaining demand minus open slack, per dimension.
	if len(open)+s.extraMachinesNeeded(i, open) >= s.best {
		return
	}
	d := s.dbs[i]
	if d.Replicas <= 0 {
		d.Replicas = 1
	}
	s.assign(i, d, 0, nil, open)
}

// extraMachinesNeeded lower-bounds how many new machines the remaining
// databases force, by per-dimension volume.
func (s *optSolver) extraMachinesNeeded(i int, open []Resources) int {
	demand := s.suffix[i]
	var slack Resources
	for _, r := range open {
		slack = slack.Add(r)
	}
	need := 0
	check := func(dem, sl, capDim float64) {
		if capDim <= 0 {
			return
		}
		if extra := int(math.Ceil((dem - sl) / capDim)); extra > need {
			need = extra
		}
	}
	check(demand.CPU, slack.CPU, s.cap.CPU)
	check(demand.Memory, slack.Memory, s.cap.Memory)
	check(demand.Disk, slack.Disk, s.cap.Disk)
	check(demand.DiskBW, slack.DiskBW, s.cap.DiskBW)
	if need < 0 {
		need = 0
	}
	return need
}

// assign enumerates machine sets for the replicas of database i. Replicas
// go on distinct machines; chosen holds machine indexes picked so far, in
// increasing order (replicas of one database are interchangeable).
func (s *optSolver) assign(i int, d Database, fromIdx int, chosen []int, open []Resources) {
	if len(chosen) == d.Replicas {
		next := make([]Resources, len(open))
		copy(next, open)
		for _, idx := range chosen {
			next[idx] = next[idx].Sub(d.Req)
		}
		s.solve(i+1, next)
		return
	}
	remainingReplicas := d.Replicas - len(chosen)
	for idx := fromIdx; idx < len(open); idx++ {
		if d.Req.Fits(open[idx]) {
			s.assign(i, d, idx+1, append(chosen, idx), open)
			if s.nodes >= s.budget {
				return
			}
		}
	}
	// Open new machines for the remaining replicas (identical machines:
	// opening exactly the next remainingReplicas indexes covers all
	// distinct choices up to symmetry).
	if len(open)+remainingReplicas >= s.best {
		return
	}
	if !d.Req.Fits(s.cap) {
		return
	}
	next := make([]Resources, len(open), len(open)+remainingReplicas)
	copy(next, open)
	full := append([]int{}, chosen...)
	for r := 0; r < remainingReplicas; r++ {
		next = append(next, s.cap)
		full = append(full, len(next)-1)
	}
	for _, idx := range full {
		next[idx] = next[idx].Sub(d.Req)
	}
	s.solve(i+1, next)
}
