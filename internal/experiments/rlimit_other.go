//go:build !linux

package experiments

// raiseFDLimit is a no-op on platforms without RLIMIT_NOFILE syscalls; the
// connection-scaling benchmark then runs at whatever limit the OS grants.
func raiseFDLimit(uint64) {}
