package experiments

import (
	"sync"
	"time"

	"sdp/internal/core"
	"sdp/internal/history"
	"sdp/internal/sqldb"
)

// Table1Cell is one cell of the paper's Table 1.
type Table1Cell struct {
	Option     core.ReadOption
	Mode       core.AckMode
	Trials     int
	Violations int
}

// Serializable reports whether no violation was observed.
func (c Table1Cell) Serializable() bool { return c.Violations == 0 }

// Table1Result is the full 2x3 matrix.
type Table1Result struct {
	Cells []Table1Cell
}

// RunTable1 reproduces Table 1: for each (read option, ack mode) cell it
// drives adversarial transaction pairs shaped like the paper's Section 3.1
// example and checks each trial's execution history for global one-copy
// serializability. Expected: violations only for Options 2 and 3 with the
// aggressive controller.
func RunTable1(cfg Config) Table1Result {
	trials := 150
	if cfg.Quick {
		trials = 40
	}
	var res Table1Result
	for _, mode := range []core.AckMode{core.Conservative, core.Aggressive} {
		for _, opt := range []core.ReadOption{core.ReadOption1, core.ReadOption2, core.ReadOption3} {
			n := trials
			if mode == core.Conservative {
				// Conservative trials resolve distributed deadlocks by
				// timeout and are slower; fewer trials suffice since the
				// theorem guarantees zero violations.
				n = trials / 5
			}
			res.Cells = append(res.Cells, runTable1Cell(opt, mode, n))
		}
	}
	return res
}

func runTable1Cell(opt core.ReadOption, mode core.AckMode, trials int) Table1Cell {
	rec := history.NewRecorder()
	engCfg := sqldb.DefaultConfig()
	engCfg.LockTimeout = 50 * time.Millisecond
	c := core.NewCluster("table1", core.Options{
		ReadOption:   opt,
		AckMode:      mode,
		Replicas:     2,
		EngineConfig: engCfg,
		Recorder:     rec,
	})
	if _, err := c.AddMachines(2); err != nil {
		panic(err)
	}
	mustExec := func(sql string) {
		if _, err := c.Exec("app", sql); err != nil {
			panic(err)
		}
	}
	if err := c.CreateDatabase("app"); err != nil {
		panic(err)
	}
	mustExec("CREATE TABLE obj (id INT PRIMARY KEY, v INT)")
	mustExec("INSERT INTO obj VALUES (1, 0), (2, 0)")

	cell := Table1Cell{Option: opt, Mode: mode, Trials: trials}
	for trial := 0; trial < trials; trial++ {
		rec.Reset()
		run := func(readID, writeID int64) {
			tx, err := c.Begin("app")
			if err != nil {
				return
			}
			if _, err := tx.Exec("SELECT v FROM obj WHERE id = ?", sqldb.NewInt(readID)); err != nil {
				return
			}
			if _, err := tx.Exec("UPDATE obj SET v = v + 1 WHERE id = ?", sqldb.NewInt(writeID)); err != nil {
				return
			}
			_ = tx.Commit()
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); run(1, 2) }()
		go func() { defer wg.Done(); run(2, 1) }()
		wg.Wait()
		if ok, _, _ := history.Check(rec); !ok {
			cell.Violations++
		}
	}
	return cell
}

// Render formats the matrix like the paper's Table 1.
func (r Table1Result) Render() *Table {
	t := &Table{
		Title:  "Table 1: Serializability for different read and write options",
		Header: []string{"", "Option 1", "Option 2", "Option 3"},
	}
	rowFor := func(mode core.AckMode) []string {
		row := []string{mode.String() + " controller"}
		for _, cell := range r.Cells {
			if cell.Mode != mode {
				continue
			}
			if cell.Serializable() {
				row = append(row, "Serializable")
			} else {
				row = append(row, "NOT serializable")
			}
		}
		return row
	}
	t.AddRow(rowFor(core.Conservative)...)
	t.AddRow(rowFor(core.Aggressive)...)
	return t
}
