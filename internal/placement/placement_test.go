package placement

import (
	"testing"
	"time"

	"sdp/internal/sla"
)

// window builds a WindowStats for tests from offered attempts, committed
// count and mean latency, over a 1-second window.
func window(commits, aborts, rejects uint64, meanLatency time.Duration) sla.WindowStats {
	total := commits + aborts + rejects
	var frac float64
	if total > 0 {
		frac = float64(rejects) / float64(total)
	}
	return sla.WindowStats{
		Commits:            commits,
		Aborts:             aborts,
		Rejects:            rejects,
		TPS:                float64(commits),
		RejectFraction:     frac,
		MeanLatencySeconds: meanLatency.Seconds(),
	}
}

func TestClassify(t *testing.T) {
	decl := sla.SLA{MinThroughput: 100, MaxRejectFraction: 0.1, MaxMeanLatency: 10 * time.Millisecond}
	cases := []struct {
		name string
		sig  TenantSignal
		cfg  ClassifierConfig
		want Class
	}{
		{
			// A violation the classifier cannot dissect (no record) is
			// conservatively overload: hot.
			name: "violating without a record is hot",
			sig:  TenantSignal{DB: "a", SLA: decl, Compliant: false, HasWindow: true, Window: window(80, 0, 0, time.Millisecond), WindowSeconds: 1},
			want: Hot,
		},
		{
			// A latency violation is overload whatever the offered load.
			name: "latency violation is hot",
			sig: TenantSignal{DB: "a", SLA: decl, Compliant: false, HasWindow: true,
				Window:    window(80, 0, 0, 20*time.Millisecond),
				Violation: &sla.Violation{Kinds: []string{sla.ViolationLatency}, Stats: window(80, 0, 0, 20*time.Millisecond)}, WindowSeconds: 1},
			want: Hot,
		},
		{
			// A throughput miss while demand met the floor: the platform
			// failed to serve offered work — overload, hot.
			name: "throughput violation at offered floor is hot",
			sig: TenantSignal{DB: "a", SLA: decl, Compliant: false, HasWindow: true,
				Window:    window(60, 20, 40, time.Millisecond),
				Violation: &sla.Violation{Kinds: []string{sla.ViolationThroughput}, Stats: window(60, 20, 40, time.Millisecond)}, WindowSeconds: 1},
			want: Hot,
		},
		{
			// A throughput miss because the tenant offered almost nothing:
			// demand-limited, not overload — and with offered load far
			// under the floor it classifies cold, not hot.
			name: "demand-limited throughput violation is cold",
			sig: TenantSignal{DB: "a", SLA: decl, Compliant: false, HasWindow: true,
				Window:    window(5, 0, 0, time.Millisecond),
				Violation: &sla.Violation{Kinds: []string{sla.ViolationThroughput}, Stats: window(5, 0, 0, time.Millisecond)}, WindowSeconds: 1},
			want: Cold,
		},
		{
			// Edge case from the issue: a freshly tracked tenant has no
			// completed window — no evidence, no action. Warm even though
			// its offered load (zero) is below the cold threshold.
			name: "empty window is warm, never cold",
			sig:  TenantSignal{DB: "a", SLA: decl, Compliant: true, HasWindow: false},
			want: Warm,
		},
		{
			// Tenant churn mid-window: the tenant was re-tracked, the
			// monitor reset its history, and the only completed window is
			// idle (zero attempts). Idle windows are never violations, but
			// with a declared throughput floor and a compliant verdict an
			// offered load of 0 is legitimate cold evidence.
			name: "idle window with declared floor is cold",
			sig:  TenantSignal{DB: "a", SLA: decl, Compliant: true, HasWindow: true, Window: window(0, 0, 0, 0), WindowSeconds: 1},
			want: Cold,
		},
		{
			// Without a declared throughput floor there is no headroom
			// measure: an idle tenant stays warm.
			name: "idle window without floor is warm",
			sig: TenantSignal{DB: "a", SLA: sla.SLA{MaxMeanLatency: 10 * time.Millisecond},
				Compliant: true, HasWindow: true, Window: window(0, 0, 0, 0), WindowSeconds: 1},
			want: Warm,
		},
		{
			// Latency pressure: compliant, but the last window's mean is
			// at 90% of the declared ceiling — grow before the violation.
			name: "latency near ceiling is hot",
			sig:  TenantSignal{DB: "a", SLA: decl, Compliant: true, HasWindow: true, Window: window(200, 0, 0, 9*time.Millisecond), WindowSeconds: 1},
			want: Hot,
		},
		{
			// An idle window cannot trip latency pressure: with zero
			// attempts the mean is meaningless.
			name: "idle window never trips latency pressure",
			sig: TenantSignal{DB: "a", SLA: sla.SLA{MaxMeanLatency: time.Nanosecond},
				Compliant: true, HasWindow: true, Window: window(0, 0, 0, 0), WindowSeconds: 1},
			want: Warm,
		},
		{
			name: "healthy mid-range load is warm",
			sig:  TenantSignal{DB: "a", SLA: decl, Compliant: true, HasWindow: true, Window: window(60, 0, 0, time.Millisecond), WindowSeconds: 1},
			want: Warm,
		},
		{
			name: "offered load under cold fraction is cold",
			sig:  TenantSignal{DB: "a", SLA: decl, Compliant: true, HasWindow: true, Window: window(10, 0, 0, time.Millisecond), WindowSeconds: 1},
			want: Cold,
		},
		{
			// Offered load counts rejects and aborts: a tenant whose work
			// is being rejected is not cold even if commits are few.
			name: "rejected load still counts as offered",
			sig:  TenantSignal{DB: "a", SLA: decl, Compliant: true, HasWindow: true, Window: window(10, 0, 60, time.Millisecond), WindowSeconds: 1},
			want: Warm,
		},
		{
			// Custom thresholds: with ColdFraction 0.8, 60 offered against
			// a floor of 100 is cold.
			name: "custom cold fraction",
			sig:  TenantSignal{DB: "a", SLA: decl, Compliant: true, HasWindow: true, Window: window(60, 0, 0, time.Millisecond), WindowSeconds: 1},
			cfg:  ClassifierConfig{ColdFraction: 0.8},
			want: Cold,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.sig, tc.cfg); got != tc.want {
				t.Fatalf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBudgetTargetAndClamp(t *testing.T) {
	cases := []struct {
		name    string
		b       Budget
		db      string
		class   Class
		current int
		want    int
	}{
		{name: "hot grows by one", b: Budget{MinReplicas: 2, MaxReplicas: 4}, db: "a", class: Hot, current: 2, want: 3},
		{name: "hot at budget stays clamped", b: Budget{MinReplicas: 2, MaxReplicas: 3}, db: "a", class: Hot, current: 3, want: 3},
		{name: "hot respects per-tenant budget", b: Budget{MinReplicas: 2, MaxReplicas: 5, PerTenant: map[string]int{"a": 3}}, db: "a", class: Hot, current: 3, want: 3},
		{name: "per-tenant budget only binds its tenant", b: Budget{MinReplicas: 2, MaxReplicas: 5, PerTenant: map[string]int{"a": 3}}, db: "b", class: Hot, current: 3, want: 4},
		{name: "cold shrinks by one", b: Budget{MinReplicas: 2, MaxReplicas: 4}, db: "a", class: Cold, current: 4, want: 3},
		{name: "cold at floor stays clamped", b: Budget{MinReplicas: 2, MaxReplicas: 4}, db: "a", class: Cold, current: 2, want: 2},
		{name: "warm holds", b: Budget{MinReplicas: 2, MaxReplicas: 4}, db: "a", class: Warm, current: 3, want: 3},
		{name: "warm under floor repairs upward", b: Budget{MinReplicas: 2, MaxReplicas: 4}, db: "a", class: Warm, current: 1, want: 2},
		{name: "warm over budget repairs downward", b: Budget{MinReplicas: 2, MaxReplicas: 3}, db: "a", class: Warm, current: 5, want: 3},
		{name: "zero value defaults to min 2 max 3", b: Budget{}, db: "a", class: Hot, current: 3, want: 3},
		{name: "per-tenant budget below floor clamps to floor", b: Budget{MinReplicas: 2, MaxReplicas: 4, PerTenant: map[string]int{"a": 1}}, db: "a", class: Cold, current: 2, want: 2},
		{name: "max below min clamps to min", b: Budget{MinReplicas: 3, MaxReplicas: 1}, db: "a", class: Hot, current: 3, want: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.b.Target(tc.db, tc.class, tc.current); got != tc.want {
				t.Fatalf("Target = %d, want %d", got, tc.want)
			}
		})
	}
}

// machines3 is a three-machine view with m1 hot and m3 cold.
func machines3(hosts map[string][]string) []MachineView {
	utils := map[string]float64{"m1": 0.9, "m2": 0.5, "m3": 0.1}
	out := make([]MachineView, 0, 3)
	for _, id := range []string{"m1", "m2", "m3"} {
		h := map[string]bool{}
		for db, ms := range hosts {
			for _, m := range ms {
				if m == id {
					h[db] = true
				}
			}
		}
		out = append(out, MachineView{ID: id, Util: utils[id], Hosts: h})
	}
	return out
}

func TestPlanGrowShrink(t *testing.T) {
	decl := sla.SLA{MinThroughput: 100, MaxRejectFraction: 0.1}
	hotSig := TenantSignal{DB: "hotdb", SLA: decl, Compliant: false, HasWindow: true, Window: window(200, 0, 0, time.Millisecond), WindowSeconds: 1}
	coldSig := TenantSignal{DB: "colddb", SLA: decl, Compliant: true, HasWindow: true, Window: window(2, 0, 0, time.Millisecond), WindowSeconds: 1}
	warmSig := TenantSignal{DB: "warmdb", SLA: decl, Compliant: true, HasWindow: true, Window: window(60, 0, 0, time.Millisecond), WindowSeconds: 1}

	t.Run("hot grows onto coldest non-hosting machine", func(t *testing.T) {
		hosts := map[string][]string{"hotdb": {"m1", "m2"}}
		res := Plan([]TenantView{{Signal: hotSig, Replicas: hosts["hotdb"]}}, machines3(hosts), PlanConfig{})
		if len(res.Actions) != 1 || res.Actions[0].Kind != Grow || res.Actions[0].To != "m3" {
			t.Fatalf("actions = %+v, want one grow onto m3", res.Actions)
		}
		if res.Classes["hotdb"] != Hot || res.Targets["hotdb"] != 3 {
			t.Fatalf("class=%v target=%d, want Hot/3", res.Classes["hotdb"], res.Targets["hotdb"])
		}
	})

	t.Run("cold shrinks off hottest hosting machine", func(t *testing.T) {
		hosts := map[string][]string{"colddb": {"m1", "m2", "m3"}}
		res := Plan([]TenantView{{Signal: coldSig, Replicas: hosts["colddb"]}}, machines3(hosts), PlanConfig{})
		if len(res.Actions) != 1 || res.Actions[0].Kind != Shrink || res.Actions[0].From != "m1" {
			t.Fatalf("actions = %+v, want one shrink off m1", res.Actions)
		}
	})

	t.Run("balanced warm load plans nothing", func(t *testing.T) {
		hosts := map[string][]string{"warmdb": {"m1", "m2"}}
		res := Plan([]TenantView{{Signal: warmSig, Replicas: hosts["warmdb"]}}, machines3(hosts), PlanConfig{})
		if len(res.Actions) != 0 {
			t.Fatalf("actions = %+v, want none", res.Actions)
		}
	})

	t.Run("in-flight copy suppresses new actions", func(t *testing.T) {
		hosts := map[string][]string{"hotdb": {"m1", "m2"}}
		res := Plan([]TenantView{{Signal: hotSig, Replicas: hosts["hotdb"], Copying: true}}, machines3(hosts), PlanConfig{})
		if len(res.Actions) != 0 {
			t.Fatalf("actions = %+v, want none while copying", res.Actions)
		}
	})

	t.Run("at-budget hot tenant plans nothing", func(t *testing.T) {
		hosts := map[string][]string{"hotdb": {"m1", "m2", "m3"}}
		res := Plan([]TenantView{{Signal: hotSig, Replicas: hosts["hotdb"]}}, machines3(hosts), PlanConfig{Budget: Budget{MinReplicas: 2, MaxReplicas: 3}})
		if len(res.Actions) != 0 {
			t.Fatalf("actions = %+v, want none at budget", res.Actions)
		}
	})

	t.Run("last replica never shrinks", func(t *testing.T) {
		hosts := map[string][]string{"colddb": {"m1"}}
		// Even with a floor of... the floor already forbids this, so force
		// the pathological config: min clamped to 1 via MinReplicas 1.
		res := Plan([]TenantView{{Signal: coldSig, Replicas: hosts["colddb"]}}, machines3(hosts), PlanConfig{Budget: Budget{MinReplicas: 1, MaxReplicas: 3}})
		if len(res.Actions) != 0 {
			t.Fatalf("actions = %+v, want none for single-replica tenant", res.Actions)
		}
	})

	t.Run("max actions caps the round hottest-first", func(t *testing.T) {
		hotA := hotSig
		hotA.DB = "a-hot"
		hotB := hotSig
		hotB.DB = "b-hot"
		coldC := coldSig
		coldC.DB = "c-cold"
		hosts := map[string][]string{
			"a-hot": {"m1", "m2"}, "b-hot": {"m1", "m2"}, "c-cold": {"m1", "m2", "m3"},
		}
		res := Plan([]TenantView{
			{Signal: coldC, Replicas: hosts["c-cold"]},
			{Signal: hotB, Replicas: hosts["b-hot"]},
			{Signal: hotA, Replicas: hosts["a-hot"]},
		}, machines3(hosts), PlanConfig{MaxActions: 2})
		if len(res.Actions) != 2 {
			t.Fatalf("actions = %+v, want exactly 2", res.Actions)
		}
		for _, a := range res.Actions {
			if a.Kind != Grow {
				t.Fatalf("capped round should spend its actions on hot tenants first, got %+v", res.Actions)
			}
		}
		if res.Actions[0].DB != "a-hot" || res.Actions[1].DB != "b-hot" {
			t.Fatalf("hot tenants should be ordered by name, got %+v", res.Actions)
		}
	})

	t.Run("grow without a free machine is a no-op", func(t *testing.T) {
		hosts := map[string][]string{"hotdb": {"m1", "m2", "m3"}}
		res := Plan([]TenantView{{Signal: hotSig, Replicas: hosts["hotdb"]}}, machines3(hosts), PlanConfig{Budget: Budget{MinReplicas: 2, MaxReplicas: 4}})
		if len(res.Actions) != 0 {
			t.Fatalf("actions = %+v, want none when every machine hosts the tenant", res.Actions)
		}
	})
}
