package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sdp/internal/netsim"
	"sdp/internal/sqldb"
)

// ctlOpts builds cluster options with a 3-replica control plane and fast
// consensus timeouts so failovers complete in tens of milliseconds.
func ctlOpts() Options {
	return Options{
		Replicas:                  2,
		Controllers:               3,
		ControllerSeed:            1,
		ControllerElectionTimeout: 20 * time.Millisecond,
	}
}

// execRetry runs one autocommit statement, retrying through controller
// failovers (ErrNotLeader while leaderless) and other transient aborts.
func execRetry(t *testing.T, c *Cluster, db, sql string, params ...sqldb.Value) *sqldb.Result {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := c.Exec(db, sql, params...)
		if err == nil {
			return res
		}
		if !IsRetryable(err) || time.Now().After(deadline) {
			t.Fatalf("Exec(%q): %v", sql, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestControlPlaneReplicatesPlacement(t *testing.T) {
	c := newTestCluster(t, 3, ctlOpts())
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 10)")

	st := c.ControllerStatus()
	if len(st) != 3 {
		t.Fatalf("controller status = %v", st)
	}
	leaders := 0
	for _, s := range st {
		if s.Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want 1: %v", leaders, st)
	}
	h := c.Health()
	if h.Controllers != 3 || !h.ControllerQuorum || h.ControllerLeader == "" {
		t.Fatalf("health = %+v", h)
	}

	if err := c.WaitControllerConvergence(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps := c.ControllerFingerprints()
	if len(fps) != 3 {
		t.Fatalf("fingerprints = %v", fps)
	}
	var want string
	for id, fp := range fps {
		if !strings.Contains(fp, "db=app{") {
			t.Errorf("%s fingerprint lacks db record: %s", id, fp)
		}
		if want == "" {
			want = fp
		} else if fp != want {
			t.Errorf("%s fingerprint diverges: %s vs %s", id, fp, want)
		}
	}
}

func TestControllerFailoverResumesCommits(t *testing.T) {
	c := newTestCluster(t, 3, ctlOpts())
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 10)")

	oldLeader, oldTerm := c.LeaderController()
	killed, err := c.KillLeaderController()
	if err != nil {
		t.Fatal(err)
	}
	if killed != oldLeader {
		t.Fatalf("killed %s, leader was %s", killed, oldLeader)
	}

	// The cluster must resume commits on its own: the survivors elect a new
	// leader, its takeover reconciles state, and the data path reopens.
	execRetry(t, c, "app", "INSERT INTO t VALUES (2, 20)")

	newLeader, newTerm := c.LeaderController()
	if newLeader == "" || newLeader == oldLeader || newTerm <= oldTerm {
		t.Fatalf("leader %s term %d after killing %s term %d", newLeader, newTerm, oldLeader, oldTerm)
	}
	if err := c.WaitControllerConvergence(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Control mutations work in the new term and the dead replica catches
	// up on restart.
	if err := c.CreateDatabase("app2"); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartController(killed); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitControllerConvergence(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps := c.ControllerFingerprints()
	if len(fps) != 3 {
		t.Fatalf("fingerprints after restart = %v", fps)
	}
	if !strings.Contains(fps[killed], "db=app2{") {
		t.Errorf("restarted replica missing app2: %s", fps[killed])
	}
}

// TestControllerKillInPrepareWindow kills the controller leader after 2PC
// prepares were issued but before the commit decision: the new leader's
// takeover must roll the transaction back everywhere and release its locks.
func TestControllerKillInPrepareWindow(t *testing.T) {
	c := newTestCluster(t, 3, ctlOpts())
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 0)")

	// The crash hook halts the commit path exactly where the leader's death
	// would; KillLeaderController then stops the consensus node for real.
	c.SetCrashHook(func(stage CommitStage, _ uint64) bool { return stage == StagePreparing })
	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE t SET v = 9 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrMachineFailed) {
		t.Fatalf("commit err = %v, want primary-failure", err)
	}
	if c.InTransit() != 1 {
		t.Fatalf("in transit = %d, want 1", c.InTransit())
	}
	if _, err := c.KillLeaderController(); err != nil {
		t.Fatal(err)
	}

	// The new leader's takeover resolves the in-transit transaction.
	deadline := time.Now().Add(2 * time.Second)
	for c.InTransit() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in transit = %d after failover", c.InTransit())
		}
		time.Sleep(2 * time.Millisecond)
	}
	res := execRetry(t, c, "app", "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 0 {
		t.Errorf("v = %v, want 0 (rolled back)", res.Rows[0][0])
	}
	for _, id := range c.LiveMachineIDs() {
		m, _ := c.Machine(id)
		if locks := m.Engine().Stats().LocksHeld; locks != 0 {
			t.Errorf("%s: %d locks held, want 0", id, locks)
		}
	}
}

// TestControllerKillAfterCommitDecision kills the leader after the commit
// decision was mirrored: the new leader's takeover must drive the commit to
// completion on every participant.
func TestControllerKillAfterCommitDecision(t *testing.T) {
	c := newTestCluster(t, 3, ctlOpts())
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 0)")

	c.SetCrashHook(func(stage CommitStage, _ uint64) bool { return stage == StageCommitting })
	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE t SET v = 7 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrMachineFailed) {
		t.Fatalf("commit err = %v, want primary-failure", err)
	}
	if _, err := c.KillLeaderController(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for c.InTransit() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in transit = %d after failover", c.InTransit())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The decision survived the controller crash: committed on all replicas.
	reps, _ := c.Replicas("app")
	for _, id := range reps {
		m, _ := c.Machine(id)
		res, err := m.Engine().Exec("app", "SELECT v FROM t WHERE id = 1")
		if err != nil {
			t.Fatalf("replica %s: %v", id, err)
		}
		if res.Rows[0][0].Int != 7 {
			t.Errorf("replica %s: v = %v, want 7", id, res.Rows[0][0])
		}
	}
}

// TestControllerKillMidCopyAborts kills the leader while an Algorithm 1 copy
// is streaming tables: the copy must abort without registering the
// half-copied replica, the replicated copy record must clear, and a retry
// after recovery must succeed.
func TestControllerKillMidCopyAborts(t *testing.T) {
	net := netsim.New(7, nil)
	opts := ctlOpts()
	opts.Network = net
	opts.CallTimeout = 100 * time.Millisecond
	c := newTestCluster(t, 3, opts)
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	for i := 1; i <= 50; i++ {
		clusterExec(t, c, "INSERT INTO t VALUES (?, ?)", intv(int64(i)), intv(int64(i)))
	}

	reps, _ := c.Replicas("app")
	target := ""
	for _, id := range c.LiveMachineIDs() {
		if !contains(reps, id) {
			target = id
		}
	}
	var once sync.Once
	net.OnDeliver(func(ci netsim.CallInfo) {
		if ci.Op == "copy_apply" {
			once.Do(func() {
				if _, err := c.KillLeaderController(); err != nil {
					t.Errorf("KillLeaderController: %v", err)
				}
			})
		}
	})

	if err := c.CreateReplica("app", target); !errors.Is(err, ErrCopyAborted) {
		t.Fatalf("CreateReplica = %v, want ErrCopyAborted", err)
	}
	if reps, _ = c.Replicas("app"); len(reps) != 2 || contains(reps, target) {
		t.Fatalf("replicas = %v after aborted copy", reps)
	}
	if err := c.WaitControllerConvergence(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for id, fp := range c.ControllerFingerprints() {
		if strings.Contains(fp, "copy=") {
			t.Errorf("%s still records a copy in flight: %s", id, fp)
		}
	}

	// The copy is retryable once the control plane recovered.
	if err := c.CreateReplica("app", target); err != nil {
		t.Fatalf("retry CreateReplica: %v", err)
	}
	if reps, _ = c.Replicas("app"); len(reps) != 3 {
		t.Fatalf("replicas = %v after retry", reps)
	}
	if err := c.WaitControllerConvergence(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestBeginAtRedirectsToLeader(t *testing.T) {
	c := newTestCluster(t, 2, ctlOpts())
	leader, _ := c.LeaderController()
	for _, id := range c.ControllerIDs() {
		tx, err := c.BeginAt(id, "app")
		if id == leader {
			if err != nil {
				t.Fatalf("BeginAt(leader): %v", err)
			}
			_ = tx.Rollback()
			continue
		}
		if !errors.Is(err, ErrNotLeader) {
			t.Fatalf("BeginAt(%s) = %v, want ErrNotLeader", id, err)
		}
		if !IsRetryable(err) {
			t.Errorf("ErrNotLeader should be retryable")
		}
		if !strings.Contains(err.Error(), leader) {
			t.Errorf("redirect lacks leader hint: %v", err)
		}
	}
}

// TestControllerQuorumLoss kills a majority of controller replicas: the data
// path must refuse new transactions once the lease lapses, control mutations
// must fail with ErrNoQuorum, and restarting the replicas must restore full
// service without manual reconciliation.
func TestControllerQuorumLoss(t *testing.T) {
	c := newTestCluster(t, 2, ctlOpts())
	c.ctl.deadline = 300 * time.Millisecond
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")

	first, err := c.KillLeaderController()
	if err != nil {
		t.Fatal(err)
	}
	// Wait out the failover, then kill the successor too.
	execRetry(t, c, "app", "INSERT INTO t VALUES (1, 1)")
	second, err := c.KillLeaderController()
	if err != nil {
		t.Fatal(err)
	}

	// One of three replicas remains: no election can succeed, the lease
	// expires, and the survivor refuses both data and control traffic.
	time.Sleep(4 * 20 * time.Millisecond)
	if _, err := c.Begin("app"); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("Begin = %v, want ErrNotLeader", err)
	}
	if err := c.CreateDatabase("app2"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("CreateDatabase = %v, want ErrNoQuorum", err)
	}
	if h := c.Health(); h.ControllerQuorum {
		t.Fatalf("health claims quorum: %+v", h)
	}

	c.RestartControllers()
	execRetry(t, c, "app", "INSERT INTO t VALUES (2, 2)")
	if err := c.CreateDatabase("app2"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitControllerConvergence(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h := c.Health(); !h.ControllerQuorum || h.Controllers != 3 {
		t.Fatalf("health after recovery: %+v", h)
	}
	_ = first
	_ = second
}

// TestFailMachineReplicated checks that machine failure and recovery flow
// through the replicated log: every controller replica's state machine
// agrees on liveness and placement afterwards.
func TestFailMachineReplicated(t *testing.T) {
	opts := ctlOpts()
	opts.WAL = walOpts().WAL
	c := newTestCluster(t, 3, opts)
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 1)")

	reps, _ := c.Replicas("app")
	victim := reps[1]
	affected, err := c.FailMachine(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != "app" {
		t.Fatalf("affected = %v", affected)
	}
	if err := c.WaitControllerConvergence(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for id, fp := range c.ControllerFingerprints() {
		if !strings.Contains(fp, "failed="+victim) {
			t.Errorf("%s does not record %s failed: %s", id, victim, fp)
		}
	}

	if _, err := c.RestartMachine(victim); err != nil {
		t.Fatal(err)
	}
	rep := c.RecoverDatabases(affected, 1)
	if len(rep.Failed) != 0 {
		t.Fatalf("recovery failed: %v", rep.Failed)
	}
	if err := c.WaitControllerConvergence(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for id, fp := range c.ControllerFingerprints() {
		if strings.Contains(fp, "failed="+victim) {
			t.Errorf("%s still records %s failed: %s", id, victim, fp)
		}
		if !strings.Contains(fp, "db=app{") {
			t.Errorf("%s lost the db record: %s", id, fp)
		}
	}
	if reps, _ = c.Replicas("app"); len(reps) != 2 {
		t.Fatalf("replicas = %v after recovery", reps)
	}
}
