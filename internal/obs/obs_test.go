package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrentTotal is the satellite guarantee: recording from N
// goroutines loses no observations — the final count, bucket total, and sum
// are exact.
func TestHistogramConcurrentTotal(t *testing.T) {
	const goroutines = 16
	const perG = 5000
	h := NewHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%100) * 1e-5)
			}
		}(g)
	}
	wg.Wait()
	want := uint64(goroutines * perG)
	if h.Count() != want {
		t.Fatalf("count = %d, want %d", h.Count(), want)
	}
	s := h.Snapshot()
	if s.Count != want {
		t.Fatalf("snapshot count = %d, want %d", s.Count, want)
	}
	var bucketTotal uint64
	for _, c := range s.Buckets {
		bucketTotal += c
	}
	if bucketTotal != want {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, want)
	}
	// Sum of i%100 over perG iterations, times 1e-5, times goroutines.
	var per float64
	for i := 0; i < perG; i++ {
		per += float64(i%100) * 1e-5
	}
	if got, want := s.Sum, per*goroutines; math.Abs(got-want) > 1e-6*want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestHistogramSnapshotDuringRecording checks the weaker live invariant: a
// snapshot taken mid-flight is internally coherent (quantiles computed over
// exactly the observations the snapshot saw).
func TestHistogramSnapshotDuringRecording(t *testing.T) {
	h := NewHistogram(nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.ObserveDuration(50 * time.Microsecond)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var total uint64
		for _, c := range s.Buckets {
			total += c
		}
		if total != s.Count {
			t.Fatalf("snapshot count %d != bucket total %d", s.Count, total)
		}
		if s.Count > 0 && (s.P99 < 1e-6 || s.P99 > 1e-3) {
			t.Fatalf("p99 = %v, implausible for a 50µs constant stream", s.P99)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPairNeverTorn is the consistency guarantee behind the Engine.Stats
// fix: concurrent readers of a Pair whose writers keep both sides equal can
// never observe the sides apart.
func TestPairNeverTorn(t *testing.T) {
	var p Pair
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					p.Add(1, 1) // one event increments both sides at once
				}
			}
		}()
	}
	for i := 0; i < 100000; i++ {
		a, b := p.Load()
		if a != b {
			t.Fatalf("torn pair: a=%d b=%d", a, b)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPairSides checks independent side updates and exact totals under
// concurrency.
func TestPairSides(t *testing.T) {
	var p Pair
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%3 == 0 {
					p.IncA()
				} else {
					p.IncB()
				}
			}
		}()
	}
	wg.Wait()
	a, b := p.Load()
	var wantA uint64
	for i := 0; i < perG; i++ {
		if i%3 == 0 {
			wantA++
		}
	}
	wantA *= goroutines
	if a != wantA || b != goroutines*perG-wantA {
		t.Fatalf("a=%d b=%d, want a=%d b=%d", a, b, wantA, goroutines*perG-wantA)
	}
}

func TestCounterGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("route_total", "routing decisions", "option")
	v.With("option1").Add(3)
	v.With("option2").Inc()
	v.With("option1").Inc()
	g := r.GaugeVec("util", "utilization", "machine", "resource")
	g.With("m1", "cpu").Set(0.5)
	g.With("m1", "cpu").Add(0.25)

	s := r.Snapshot()
	if got := s.Counter("route_total", "option", "option1"); got != 4 {
		t.Fatalf("option1 = %d, want 4", got)
	}
	if got := s.Counter("route_total"); got != 5 {
		t.Fatalf("summed = %d, want 5", got)
	}
	if got := s.Gauge("util", "machine", "m1", "resource", "cpu"); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}
	if got := s.Counter("missing_family"); got != 0 {
		t.Fatalf("missing family = %d, want 0", got)
	}
}

func TestRegistryIdempotentAndHooks(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("c", "help")
	c2 := r.Counter("c", "other help ignored")
	if c1 != c2 {
		t.Fatal("same family name returned distinct counters")
	}
	c1.Inc()
	hookRan := false
	r.OnSnapshot(func() {
		hookRan = true
		r.Gauge("bridged", "set by hook").Set(42)
	})
	s := r.Snapshot()
	if !hookRan {
		t.Fatal("snapshot hook did not run")
	}
	if got := s.Gauge("bridged"); got != 42 {
		t.Fatalf("bridged gauge = %v, want 42", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("c", "wrong kind")
}

func TestTracerRingAndCorrelation(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Record("2pc", fmt.Sprintf("gid:%d", i%2), "prepare", "")
	}
	if tr.Len() != 8 {
		t.Fatalf("len = %d, want 8", tr.Len())
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("events = %d, want 8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("ring not in order: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	if evs[len(evs)-1].Seq != 20 {
		t.Fatalf("newest seq = %d, want 20", evs[len(evs)-1].Seq)
	}
	byID := tr.ByID("gid:1")
	if len(byID) != 4 {
		t.Fatalf("gid:1 events = %d, want 4", len(byID))
	}
	for _, e := range byID {
		if e.ID != "gid:1" {
			t.Fatalf("wrong ID in filtered events: %q", e.ID)
		}
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record("scope", fmt.Sprintf("g%d", g), "phase", "")
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 128 {
		t.Fatalf("len = %d, want 128", tr.Len())
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	s := h.Snapshot()
	if s.P50 <= 1 || s.P50 > 2 {
		t.Fatalf("p50 = %v, want in (1,2]", s.P50)
	}
	if s.P99 <= 1 || s.P99 > 2 {
		t.Fatalf("p99 = %v, want in (1,2]", s.P99)
	}
	h.Observe(100) // overflow bucket saturates at the last bound
	s = h.Snapshot()
	if got := s.Quantile(1.0); got != 8 {
		t.Fatalf("q1.0 = %v, want 8 (saturated)", got)
	}
}

func TestSnapshotSerialization(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a counter").Add(7)
	r.Histogram("lat_seconds", "a histogram", nil).ObserveDuration(2 * time.Millisecond)
	r.TraceEvent("copy", "db1", "start", "m2")

	s := r.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counter("a_total") != 7 {
		t.Fatalf("roundtrip counter = %d, want 7", back.Counter("a_total"))
	}
	var buf bytes.Buffer
	s.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"a_total 7", "lat_seconds", "count=1"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
}
