package sqldb

import (
	"fmt"
	"strings"
)

// Column describes one column of a table schema.
type Column struct {
	Name       string
	Typ        Type
	PrimaryKey bool
	NotNull    bool
	Unique     bool
}

// Schema is the immutable description of a table: its name, columns, and
// primary-key column position.
type Schema struct {
	Table  string
	Cols   []Column
	PKIdx  int // index into Cols of the primary key; -1 when the table has none
	colIdx map[string]int
}

// NewSchema builds a schema from column definitions, validating names and
// locating the primary key.
func NewSchema(table string, cols []Column) (*Schema, error) {
	if table == "" {
		return nil, fmt.Errorf("sqldb: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("sqldb: table %s has no columns", table)
	}
	s := &Schema{Table: table, Cols: cols, PKIdx: -1, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := s.colIdx[lc]; dup {
			return nil, fmt.Errorf("sqldb: duplicate column %s in table %s", c.Name, table)
		}
		s.colIdx[lc] = i
		if c.PrimaryKey {
			if s.PKIdx >= 0 {
				return nil, fmt.Errorf("sqldb: table %s has multiple primary keys", table)
			}
			s.PKIdx = i
		}
	}
	return s, nil
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// ColNames returns the column names in declaration order.
func (s *Schema) ColNames() []string {
	names := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		names[i] = c.Name
	}
	return names
}

// CheckRow validates a full-width row against the schema: arity, NOT NULL,
// and type compatibility (INT values are accepted into FLOAT columns and are
// widened in place).
func (s *Schema) CheckRow(r Row) error {
	if len(r) != len(s.Cols) {
		return fmt.Errorf("%w: table %s expects %d values, got %d", ErrTypeMismatch, s.Table, len(s.Cols), len(r))
	}
	for i, v := range r {
		c := s.Cols[i]
		if v.IsNull() {
			if c.NotNull {
				return fmt.Errorf("%w: column %s.%s is NOT NULL", ErrTypeMismatch, s.Table, c.Name)
			}
			continue
		}
		switch c.Typ {
		case TypeInt:
			if v.Typ != TypeInt {
				return fmt.Errorf("%w: column %s.%s wants INT, got %s", ErrTypeMismatch, s.Table, c.Name, v.Typ)
			}
		case TypeFloat:
			if v.Typ == TypeInt {
				r[i] = NewFloat(float64(v.Int))
			} else if v.Typ != TypeFloat {
				return fmt.Errorf("%w: column %s.%s wants FLOAT, got %s", ErrTypeMismatch, s.Table, c.Name, v.Typ)
			}
		case TypeText:
			if v.Typ != TypeText {
				return fmt.Errorf("%w: column %s.%s wants TEXT, got %s", ErrTypeMismatch, s.Table, c.Name, v.Typ)
			}
		case TypeBool:
			if v.Typ != TypeBool {
				return fmt.Errorf("%w: column %s.%s wants BOOL, got %s", ErrTypeMismatch, s.Table, c.Name, v.Typ)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Cols))
	copy(cols, s.Cols)
	out, _ := NewSchema(s.Table, cols)
	return out
}

// DDL renders the schema as a CREATE TABLE statement, usable to recreate the
// table on another engine (the dump tool uses this).
func (s *Schema) DDL() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(s.Table)
	sb.WriteString(" (")
	for i, c := range s.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteByte(' ')
		sb.WriteString(c.Typ.String())
		if c.PrimaryKey {
			sb.WriteString(" PRIMARY KEY")
		} else {
			if c.NotNull {
				sb.WriteString(" NOT NULL")
			}
			if c.Unique {
				sb.WriteString(" UNIQUE")
			}
		}
	}
	sb.WriteString(")")
	return sb.String()
}
