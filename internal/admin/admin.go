// Package admin implements the platform's HTTP admin plane: a small,
// dependency-free operator surface exposing Prometheus metrics, liveness and
// readiness probes aggregated from the colo free pools and recovery state,
// the trace ring with scope/correlation-ID filtering, the SLA compliance
// report, and the standard pprof profiling endpoints. The handler is plain
// net/http so tests can drive it through httptest without binding a port.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"sdp/internal/obs"
	"sdp/internal/placement"
	"sdp/internal/sla"
	"sdp/internal/system"
)

// Platform is the slice of the platform the admin plane reads from. The root
// sdp.Platform implements it; tests substitute fakes.
type Platform interface {
	// Health returns the platform-wide liveness report.
	Health() system.Health
	// SLAReport returns the current SLA compliance report.
	SLAReport() sla.ComplianceReport
	// PlacementReport returns the adaptive placement controllers' merged
	// state (a disabled report when placement is not running).
	PlacementReport() placement.Report
}

// Handler builds the admin-plane HTTP handler over the given registry and
// platform. plat may be nil (registry-only deployments): the probes then
// report a trivially healthy empty platform and /slaz is 404.
func Handler(reg *obs.Registry, plat Platform) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", serveIndex)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// OpenMetrics carries histogram→trace exemplars; serve it when the
		// scraper negotiates for it (Prometheus sends it in Accept).
		if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", obs.OpenMetricsContentType)
			reg.Snapshot().WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		serveHealthz(w, plat)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		serveReadyz(w, plat)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		serveTracez(w, r, reg)
	})
	mux.HandleFunc("/slowz", func(w http.ResponseWriter, r *http.Request) {
		serveSlowz(w, r, reg)
	})
	mux.HandleFunc("/slaz", func(w http.ResponseWriter, r *http.Request) {
		serveSlaz(w, r, plat)
	})
	mux.HandleFunc("/placementz", func(w http.ResponseWriter, r *http.Request) {
		servePlacementz(w, r, plat)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveIndex lists the admin endpoints so an operator hitting the root sees
// what is available.
func serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `sdp admin plane
  /metrics          Prometheus text exposition of the obs registry
  /healthz          liveness: any live machine in any cluster
  /readyz           readiness: colos up, replication degree met, no copies in flight, controller quorum held
  /tracez           trace ring (query: scope=2pc|copy|recovery|repl|dr|sla, gid=<correlation id>;
                    trace=<16-hex trace id> for the span tree, format=text to render it)
  /slowz            slow-query log, newest last (query: format=text for the operator rendering)
  /slaz             SLA compliance report (query: format=text for the operator rendering)
  /placementz       adaptive placement state: tenant classes, replica targets, recent
                    grow/shrink/migrate actions (query: format=text for the operator rendering)
  /debug/pprof/     Go runtime profiles
`)
}

// healthzBody is the JSON body of /healthz.
type healthzBody struct {
	// Status is "ok" or "down".
	Status string `json:"status"`
	// LiveMachines counts live machines across all clusters in all colos.
	LiveMachines int `json:"live_machines"`
	// Health is the full platform health report.
	Health system.Health `json:"health"`
}

// serveHealthz reports liveness: the platform is "down" only when at least
// one cluster exists and no machine anywhere is live. An empty platform (or
// nil plat) is trivially alive — it is not failing, just not serving yet.
func serveHealthz(w http.ResponseWriter, plat Platform) {
	body := healthzBody{Status: "ok"}
	clusters := 0
	if plat != nil {
		body.Health = plat.Health()
		for _, co := range body.Health.Colos {
			for _, cl := range co.Clusters {
				clusters++
				body.LiveMachines += cl.LiveMachines
			}
		}
	}
	code := http.StatusOK
	if clusters > 0 && body.LiveMachines == 0 {
		body.Status = "down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// readyzBody is the JSON body of /readyz.
type readyzBody struct {
	// Status is "ready" or "not ready".
	Status string `json:"status"`
	// Reasons lists why the platform is not ready (empty when ready).
	Reasons []string `json:"reasons,omitempty"`
}

// serveReadyz reports readiness: every colo up, every cluster holding enough
// live machines for its replication degree, and no replica copies in flight
// (a copy in flight means Algorithm 1 may be rejecting writes). A nil plat
// is trivially ready; a platform with zero colos is not.
func serveReadyz(w http.ResponseWriter, plat Platform) {
	body := readyzBody{Status: "ready"}
	if plat != nil {
		h := plat.Health()
		if len(h.Colos) == 0 {
			body.Reasons = append(body.Reasons, "no colos registered")
		}
		for _, co := range h.Colos {
			if co.Down {
				body.Reasons = append(body.Reasons, fmt.Sprintf("colo %s down", co.Colo))
				continue
			}
			for _, cl := range co.Clusters {
				if cl.LiveMachines < cl.Replicas {
					body.Reasons = append(body.Reasons, fmt.Sprintf(
						"cluster %s: %d live machines < replication degree %d",
						cl.Cluster, cl.LiveMachines, cl.Replicas))
				}
				if cl.ActiveCopies > 0 {
					body.Reasons = append(body.Reasons, fmt.Sprintf(
						"cluster %s: %d replica copies in flight", cl.Cluster, cl.ActiveCopies))
				}
				if !cl.ControllerQuorum {
					body.Reasons = append(body.Reasons, fmt.Sprintf(
						"cluster %s: controller quorum lost (no leader holds the lease)",
						cl.Cluster))
				}
			}
		}
	}
	code := http.StatusOK
	if len(body.Reasons) > 0 {
		body.Status = "not ready"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// tracezBody is the JSON body of /tracez.
type tracezBody struct {
	// Scope is the scope filter applied ("" = all).
	Scope string `json:"scope,omitempty"`
	// ID is the correlation-ID filter applied ("" = all).
	ID string `json:"id,omitempty"`
	// Count is len(Events).
	Count int `json:"count"`
	// Events are the matching ring events, oldest first.
	Events []obs.Event `json:"events"`
}

// spanTreeBody is the JSON body of /tracez?trace=<id>.
type spanTreeBody struct {
	// TraceID is the requested trace, in 16-hex-digit form.
	TraceID string `json:"trace_id"`
	// Count is len(Spans).
	Count int `json:"count"`
	// Spans are the trace's spans, oldest first. Parent links reconstruct
	// the tree; format=text renders it server-side.
	Spans []obs.Span `json:"spans"`
}

// serveTracez serves the trace ring, filtered by the scope and gid query
// parameters using the same predicate as the experiments CLI's -trace-scope.
// With trace=<16-hex trace id> it instead serves that distributed trace's
// span tree: JSON spans by default, the indented rendering (children under
// parents, per-span durations) with format=text.
func serveTracez(w http.ResponseWriter, r *http.Request, reg *obs.Registry) {
	if tid := r.URL.Query().Get("trace"); tid != "" {
		id, err := strconv.ParseUint(tid, 16, 64)
		if err != nil {
			http.Error(w, "bad trace id (want 16 hex digits): "+tid, http.StatusBadRequest)
			return
		}
		spans := reg.Spans().ByTrace(id)
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			obs.WriteSpanTree(w, spans)
			return
		}
		if spans == nil {
			spans = []obs.Span{}
		}
		writeJSON(w, http.StatusOK, spanTreeBody{TraceID: obs.TraceIDString(id), Count: len(spans), Spans: spans})
		return
	}
	scope := r.URL.Query().Get("scope")
	id := r.URL.Query().Get("gid")
	if id == "" {
		id = r.URL.Query().Get("id")
	}
	events := reg.Trace().EventsFiltered(scope, id)
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, tracezBody{Scope: scope, ID: id, Count: len(events), Events: events})
}

// slowzBody is the JSON body of /slowz.
type slowzBody struct {
	// Count is len(Entries).
	Count int `json:"count"`
	// Entries are the retained slow-query entries, oldest first.
	Entries []obs.SlowEntry `json:"entries"`
}

// serveSlowz serves the slow-query log: JSON by default, the operator text
// rendering (with per-entry span trees) with ?format=text.
func serveSlowz(w http.ResponseWriter, r *http.Request, reg *obs.Registry) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.SlowLog().WriteText(w)
		return
	}
	entries := reg.SlowLog().Entries()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	writeJSON(w, http.StatusOK, slowzBody{Count: len(entries), Entries: entries})
}

// serveSlaz serves the SLA compliance report: JSON by default, the operator
// text rendering with ?format=text.
func serveSlaz(w http.ResponseWriter, r *http.Request, plat Platform) {
	if plat == nil {
		http.Error(w, "no platform attached", http.StatusNotFound)
		return
	}
	rep := plat.SLAReport()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.WriteText(w)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// servePlacementz serves the adaptive placement report: JSON by default,
// the operator text rendering with ?format=text.
func servePlacementz(w http.ResponseWriter, r *http.Request, plat Platform) {
	if plat == nil {
		http.Error(w, "no platform attached", http.StatusNotFound)
		return
	}
	rep := plat.PlacementReport()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.WriteText(w)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// writeJSON writes v as an indented JSON response with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running admin-plane HTTP server bound to a real port.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves h on it in a background
// goroutine. Close the returned server to stop it.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address, useful when Serve was given port 0.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
