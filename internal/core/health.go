package core

// ClusterHealth summarises one cluster's liveness for the admin plane's
// /healthz and /readyz endpoints: machine counts, hosted databases, the
// configured replication degree, and how many Algorithm 1 replica copies
// (replica creation or recovery re-replication) are in flight right now.
type ClusterHealth struct {
	// Cluster is the cluster's name.
	Cluster string `json:"cluster"`
	// Machines counts all registered machines, live or failed.
	Machines int `json:"machines"`
	// LiveMachines counts machines that have not failed.
	LiveMachines int `json:"live_machines"`
	// Databases counts hosted client databases.
	Databases int `json:"databases"`
	// ActiveCopies counts databases with a replica copy in progress.
	ActiveCopies int `json:"active_copies"`
	// Replicas is the configured replication degree new databases get.
	Replicas int `json:"replicas"`
	// DegradedLinks counts live machines the controller currently cannot
	// reach over the simulated network (asymmetric partitions count when
	// the controller→machine direction is cut). Always zero without a
	// fault-injecting network.
	DegradedLinks int `json:"degraded_links,omitempty"`
	// Controllers counts configured control-plane replicas; zero when the
	// cluster runs the single-controller process-pair model and the three
	// fields below are then meaningless.
	Controllers int `json:"controllers,omitempty"`
	// ControllerLeader is the current consensus leader's replica id, empty
	// while leaderless (an election or quorum loss in progress).
	ControllerLeader string `json:"controller_leader,omitempty"`
	// ControllerTerm is the leader's election term.
	ControllerTerm uint64 `json:"controller_term,omitempty"`
	// ControllerQuorum reports whether a leader currently holds the quorum
	// lease — the condition for the data path to serve. False means new
	// transactions are refused with ErrNotLeader until a leader (re)emerges.
	ControllerQuorum bool `json:"controller_quorum"`
}

// Health captures the cluster's current liveness in one pass under the
// cluster mutex.
func (c *Cluster) Health() ClusterHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := ClusterHealth{
		Cluster:   c.name,
		Machines:  len(c.order),
		Databases: len(c.dbs),
		Replicas:  c.opts.Replicas,
	}
	for _, id := range c.order {
		if !c.machines[id].Failed() {
			h.LiveMachines++
			if !c.reachable(id) {
				h.DegradedLinks++
			}
		}
	}
	for _, ds := range c.dbs {
		if ds.copying != nil {
			h.ActiveCopies++
		}
	}
	if cp := c.ctl; cp != nil {
		h.Controllers = len(cp.nodes)
		h.ControllerLeader, h.ControllerTerm = cp.group.LeaderID()
		h.ControllerQuorum = cp.leaseOK()
	} else {
		h.ControllerQuorum = true
	}
	return h
}
