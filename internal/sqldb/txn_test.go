package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func setupAccounts(t *testing.T, e *Engine) {
	t.Helper()
	mustExec(t, e, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
	mustExec(t, e, "INSERT INTO acct VALUES (1, 100), (2, 100)")
}

func TestTxnCommitVisible(t *testing.T) {
	e := newTestDB(t)
	setupAccounts(t, e)
	tx, err := e.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE acct SET bal = bal - 10 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE acct SET bal = bal + 10 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, "SELECT bal FROM acct WHERE id = 1")
	if res.Rows[0][0].Int != 90 {
		t.Errorf("bal = %v", res.Rows[0][0])
	}
}

func TestTxnRollbackUndoesEverything(t *testing.T) {
	e := newTestDB(t)
	setupAccounts(t, e)
	tx, _ := e.Begin("app")
	if _, err := tx.Exec("UPDATE acct SET bal = 0 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO acct VALUES (3, 50)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("DELETE FROM acct WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, "SELECT id, bal FROM acct ORDER BY id")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].Int != 100 || res.Rows[1][1].Int != 100 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestTxnStateErrors(t *testing.T) {
	e := newTestDB(t)
	setupAccounts(t, e)
	tx, _ := e.Begin("app")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("SELECT 1"); !errors.Is(err, ErrTxnDone) {
		t.Errorf("exec after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("rollback after commit: %v", err)
	}

	tx2, _ := e.Begin("app")
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Errorf("idempotent rollback: %v", err)
	}
	if _, err := tx2.Exec("SELECT 1"); !errors.Is(err, ErrTxnAborted) {
		t.Errorf("exec after rollback: %v", err)
	}
}

func TestTxnWriteBlocksWrite(t *testing.T) {
	e := newTestDB(t)
	setupAccounts(t, e)
	tx1, _ := e.Begin("app")
	if _, err := tx1.Exec("UPDATE acct SET bal = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tx2, _ := e.Begin("app")
		_, err := tx2.Exec("UPDATE acct SET bal = 2 WHERE id = 1")
		if err == nil {
			err = tx2.Commit()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("second writer did not block (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("second writer failed after unblock: %v", err)
	}
	res := mustExec(t, e, "SELECT bal FROM acct WHERE id = 1")
	if res.Rows[0][0].Int != 2 {
		t.Errorf("bal = %v", res.Rows[0][0])
	}
}

func TestTxnReadDoesNotBlockRead(t *testing.T) {
	e := newTestDB(t)
	setupAccounts(t, e)
	tx1, _ := e.Begin("app")
	if _, err := tx1.Exec("SELECT bal FROM acct WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	tx2, _ := e.Begin("app")
	done := make(chan error, 1)
	go func() {
		_, err := tx2.Exec("SELECT bal FROM acct WHERE id = 1")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("concurrent read failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("read blocked on read lock")
	}
	_ = tx1.Rollback()
	_ = tx2.Rollback()
}

func TestDeadlockDetected(t *testing.T) {
	e := newTestDB(t)
	setupAccounts(t, e)

	tx1, _ := e.Begin("app")
	tx2, _ := e.Begin("app")
	if _, err := tx1.Exec("UPDATE acct SET bal = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec("UPDATE acct SET bal = 2 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := tx1.Exec("UPDATE acct SET bal = 1 WHERE id = 2")
		errs <- err
	}()
	go func() {
		defer wg.Done()
		_, err := tx2.Exec("UPDATE acct SET bal = 2 WHERE id = 1")
		errs <- err
	}()
	wg.Wait()
	close(errs)

	var deadlocks, ok int
	for err := range errs {
		switch {
		case errors.Is(err, ErrDeadlock):
			deadlocks++
		case err == nil:
			ok++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks < 1 {
		t.Fatalf("no deadlock detected (deadlocks=%d ok=%d)", deadlocks, ok)
	}
	if got := e.Stats().Deadlocks; got < 1 {
		t.Errorf("stats deadlocks = %d", got)
	}
	// The victim is rolled back: its earlier update must be undone.
	_ = tx1.Rollback()
	_ = tx2.Rollback()
	res := mustExec(t, e, "SELECT bal FROM acct ORDER BY id")
	for _, r := range res.Rows {
		if r[0].Int != 100 {
			t.Errorf("bal = %v after both rolled back", r[0])
		}
	}
}

func TestLockTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LockTimeout = 30 * time.Millisecond
	e := NewEngine(cfg)
	if err := e.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustExec(t, e, "INSERT INTO t VALUES (1)")

	tx1, _ := e.Begin("app")
	if _, err := tx1.Exec("UPDATE t SET id = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	tx2, _ := e.Begin("app")
	_, err := tx2.Exec("UPDATE t SET id = 1 WHERE id = 1")
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	_ = tx1.Rollback()
}

func TestPrepareBlocksFurtherOps(t *testing.T) {
	e := newTestDB(t)
	setupAccounts(t, e)
	tx, _ := e.Begin("app")
	if _, err := tx.Exec("UPDATE acct SET bal = 7 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("SELECT 1"); !errors.Is(err, ErrTxnPrepared) {
		t.Errorf("exec after prepare: %v", err)
	}
	if err := tx.Prepare(); err != nil {
		t.Errorf("idempotent prepare: %v", err)
	}
	if err := tx.CommitPrepared(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, "SELECT bal FROM acct WHERE id = 1")
	if res.Rows[0][0].Int != 7 {
		t.Errorf("bal = %v", res.Rows[0][0])
	}
}

func TestCommitPreparedRequiresPrepare(t *testing.T) {
	e := newTestDB(t)
	setupAccounts(t, e)
	tx, _ := e.Begin("app")
	if err := tx.CommitPrepared(); !errors.Is(err, ErrNotPrepared) {
		t.Errorf("err = %v", err)
	}
	_ = tx.Rollback()
}

func TestPreparedRollback(t *testing.T) {
	e := newTestDB(t)
	setupAccounts(t, e)
	tx, _ := e.Begin("app")
	if _, err := tx.Exec("UPDATE acct SET bal = 7 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, "SELECT bal FROM acct WHERE id = 1")
	if res.Rows[0][0].Int != 100 {
		t.Errorf("bal = %v", res.Rows[0][0])
	}
}

// TestPrepareReleasesReadLocks verifies the 2PC optimisation at the core of
// the paper's Table 1: with ReleaseReadLocksAtPrepare on, a writer can
// acquire an X lock on an object that a prepared transaction merely read;
// with the optimisation off, the writer stays blocked until commit.
func TestPrepareReleasesReadLocks(t *testing.T) {
	run := func(release bool) bool {
		cfg := DefaultConfig()
		cfg.ReleaseReadLocksAtPrepare = release
		cfg.LockTimeout = 50 * time.Millisecond
		e := NewEngine(cfg)
		if err := e.CreateDatabase("app"); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, n INT)"); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Exec("app", "INSERT INTO t VALUES (1, 0)"); err != nil {
			t.Fatal(err)
		}

		reader, _ := e.Begin("app")
		if _, err := reader.Exec("SELECT n FROM t WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
		// Reader also writes something else so it is not read-only.
		if _, err := reader.Exec("INSERT INTO t VALUES (2, 0)"); err != nil {
			t.Fatal(err)
		}
		if err := reader.Prepare(); err != nil {
			t.Fatal(err)
		}

		writer, _ := e.Begin("app")
		_, err := writer.Exec("UPDATE t SET n = 1 WHERE id = 1")
		acquired := err == nil
		_ = writer.Rollback()
		_ = reader.Rollback()
		return acquired
	}
	if !run(true) {
		t.Error("with release-at-prepare, writer should acquire the lock")
	}
	if run(false) {
		t.Error("without release-at-prepare, writer should stay blocked")
	}
}

func TestConcurrentTransfersConserveMoney(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
	const nAcct = 8
	for i := 0; i < nAcct; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO acct VALUES (%d, 100)", i))
	}
	const workers = 8
	const transfers = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := (seed + i) % nAcct
				to := (seed + i*3 + 1) % nAcct
				if from == to {
					continue
				}
				tx, err := e.Begin("app")
				if err != nil {
					continue
				}
				_, err1 := tx.Exec("UPDATE acct SET bal = bal - 1 WHERE id = ?", NewInt(int64(from)))
				var err2 error
				if err1 == nil {
					_, err2 = tx.Exec("UPDATE acct SET bal = bal + 1 WHERE id = ?", NewInt(int64(to)))
				}
				if err1 != nil || err2 != nil {
					_ = tx.Rollback()
					continue
				}
				_ = tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	res := mustExec(t, e, "SELECT SUM(bal) FROM acct")
	if res.Rows[0][0].Int != nAcct*100 {
		t.Errorf("total = %v, want %d (money not conserved)", res.Rows[0][0], nAcct*100)
	}
}

func TestEngineClose(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY)")
	e.Close()
	if _, err := e.Begin("app"); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Begin after close: %v", err)
	}
	if err := e.CreateDatabase("other"); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("CreateDatabase after close: %v", err)
	}
}

func TestBeginUnknownDatabase(t *testing.T) {
	e := NewEngine(DefaultConfig())
	if _, err := e.Begin("nope"); !errors.Is(err, ErrNoTable) {
		t.Errorf("err = %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	e := newTestDB(t)
	setupAccounts(t, e)
	tx, _ := e.Begin("app")
	_, _ = tx.Exec("UPDATE acct SET bal = 1 WHERE id = 1")
	_ = tx.Commit()
	tx2, _ := e.Begin("app")
	_, _ = tx2.Exec("UPDATE acct SET bal = 1 WHERE id = 1")
	_ = tx2.Rollback()
	s := e.Stats()
	if s.Commits < 1 || s.Aborts < 1 {
		t.Errorf("stats = %+v", s)
	}
}
