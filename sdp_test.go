package sdp

import (
	"errors"
	"sync"
	"testing"
)

func newPlatform(t *testing.T) *Platform {
	t.Helper()
	p := New(Config{ClusterSize: 3})
	p.AddColo("west", "us-west", 6)
	if err := p.CreateDatabase("app", SLA{SizeMB: 300, MinTPS: 2, MaxRejectFraction: 0.01}, "west"); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformQuickstartFlow(t *testing.T) {
	p := newPlatform(t)
	conn := p.Open("app")
	if conn.Database() != "app" {
		t.Errorf("db = %s", conn.Database())
	}
	if _, err := conn.Exec("CREATE TABLE notes (id INT PRIMARY KEY, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	tx, err := conn.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO notes VALUES (?, ?)", Int(1), Text("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO notes VALUES (?, ?)", Int(2), Text("world")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Query("SELECT body FROM notes ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "hello" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestPlatformRollback(t *testing.T) {
	p := newPlatform(t)
	conn := p.Open("app")
	if _, err := conn.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	tx, _ := conn.Begin()
	if _, err := tx.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, _ := conn.Query("SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int != 0 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestPlatformManySmallApps(t *testing.T) {
	p := New(Config{ClusterSize: 4})
	p.AddColo("west", "us-west", 12)
	// Many small application databases share the machines.
	names := []string{"blog", "shop", "wiki", "forum", "gallery", "todo"}
	for _, n := range names {
		if err := p.CreateDatabase(n, SLA{SizeMB: 250, MinTPS: 1}, "west"); err != nil {
			t.Fatalf("create %s: %v", n, err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(names))
	for _, n := range names {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			conn := p.Open(n)
			if _, err := conn.Exec("CREATE TABLE d (id INT PRIMARY KEY, v TEXT)"); err != nil {
				errCh <- err
				return
			}
			for i := 0; i < 20; i++ {
				if _, err := conn.Exec("INSERT INTO d VALUES (?, ?)", Int(int64(i)), Text(n)); err != nil {
					errCh <- err
					return
				}
			}
			res, err := conn.Query("SELECT COUNT(*) FROM d")
			if err != nil {
				errCh <- err
				return
			}
			if res.Rows[0][0].Int != 20 {
				errCh <- errors.New(n + ": wrong count")
			}
		}(n)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestPlatformUnknownDatabase(t *testing.T) {
	p := New(Config{})
	p.AddColo("west", "us-west", 4)
	conn := p.Open("missing")
	if _, err := conn.Exec("SELECT 1"); err == nil {
		t.Error("exec on missing database succeeded")
	}
	if _, err := conn.Begin(); err == nil {
		t.Error("begin on missing database succeeded")
	}
}
