// Command doccheck verifies that every exported top-level identifier in the
// given package directories carries a doc comment: functions and methods,
// type declarations, and package-level const/var specs (a comment on the
// enclosing group counts for its members). It exits non-zero listing the
// undocumented identifiers, so `make doc-check` fails when documentation
// regresses.
//
// With -proto FILE it additionally cross-checks the wire-protocol spec
// against the code: every Msg* and ErrCode* constant declared in the given
// packages must be named in FILE, and every Msg*/ErrCode* token in FILE
// must exist as a constant — so PROTOCOL.md cannot drift from
// internal/wire.
//
// With -metrics FILE it cross-checks the observability doc against the
// metric families a representative in-process platform run registers:
// every family named in FILE (layer-prefixed backtick tokens) must exist
// in the registry after the run, and every registered family must be
// named in FILE.
//
// Usage:
//
//	doccheck ./internal/core ./internal/system
//	doccheck -proto PROTOCOL.md ./internal/wire ./internal/core
//	doccheck -metrics OBSERVABILITY.md ./internal/obs
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	protoFile := ""
	metricsFile := ""
	for len(args) >= 2 && (args[0] == "-proto" || args[0] == "-metrics") {
		if args[0] == "-proto" {
			protoFile = args[1]
		} else {
			metricsFile = args[1]
		}
		args = args[2:]
	}
	dirs := args
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-proto FILE] [-metrics FILE] <package dir> ...")
		os.Exit(2)
	}
	var missing []string
	protoConsts := map[string]bool{}
	for _, dir := range dirs {
		m, err := checkDir(dir, protoConsts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers without doc comments:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		os.Exit(1)
	}
	if protoFile != "" {
		if drift := checkProto(protoFile, protoConsts); len(drift) > 0 {
			fmt.Fprintf(os.Stderr, "doccheck: %s drifted from the wire constants:\n", protoFile)
			for _, d := range drift {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			os.Exit(1)
		}
		fmt.Printf("doccheck: %s matches %d wire constants\n", protoFile, len(protoConsts))
	}
	if metricsFile != "" {
		if drift := checkMetrics(metricsFile); len(drift) > 0 {
			fmt.Fprintf(os.Stderr, "doccheck: %s drifted from the registered metric families:\n", metricsFile)
			for _, d := range drift {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			os.Exit(1)
		}
		fmt.Printf("doccheck: %s matches the registered metric families\n", metricsFile)
	}
	fmt.Printf("doccheck: ok (%d packages)\n", len(dirs))
}

// protoName matches wire message-type and error-code identifiers, both in
// Go source (constant names) and in prose (PROTOCOL.md backtick spans).
var protoName = regexp.MustCompile(`\b(Msg[A-Z]\w*|ErrCode[A-Z]\w*)\b`)

// checkProto compares the Msg*/ErrCode* constants collected from the
// scanned packages against the names used in the protocol spec, reporting
// drift in either direction.
func checkProto(file string, consts map[string]bool) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{err.Error()}
	}
	inDoc := map[string]bool{}
	for _, m := range protoName.FindAllString(string(data), -1) {
		inDoc[m] = true
	}
	var drift []string
	for name := range consts {
		if !inDoc[name] {
			drift = append(drift, fmt.Sprintf("constant %s is not documented in %s", name, file))
		}
	}
	for name := range inDoc {
		if !consts[name] {
			drift = append(drift, fmt.Sprintf("%s names %s, which no scanned package declares", file, name))
		}
	}
	sort.Strings(drift)
	return drift
}

// checkDir parses every non-test .go file in dir and returns the exported
// identifiers lacking documentation, as "file:line: name" strings. Along
// the way it records every Msg*/ErrCode* constant into protoConsts for the
// -proto cross-check.
func checkDir(dir string, protoConsts map[string]bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), kindOf(d), d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
					if d.Tok == token.CONST {
						for _, spec := range d.Specs {
							vs, ok := spec.(*ast.ValueSpec)
							if !ok {
								continue
							}
							for _, name := range vs.Names {
								if protoName.MatchString(name.Name) {
									protoConsts[name.Name] = true
								}
							}
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// kindOf distinguishes methods from functions in reports.
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

// checkGenDecl inspects one type/const/var declaration. A doc comment on
// the grouped declaration documents every spec inside it; otherwise each
// exported spec needs its own comment.
func checkGenDecl(d *ast.GenDecl, report func(pos token.Pos, what, name string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDocumented := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDocumented && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDocumented || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}
