package experiments

import (
	"fmt"
	"time"

	"sdp/internal/core"
	"sdp/internal/sqldb"
	"sdp/internal/tpcw"
)

// RecoveryPoint is one measurement of Figures 8–9: recovery concurrency vs
// rejected transactions per recovering database and throughput during
// recovery.
type RecoveryPoint struct {
	Threads        int
	RejectedPerDB  float64
	TPSDuring      float64
	RecoveryTime   time.Duration
	RecoveredDBs   int
	TotalCommitted uint64
	Fatal          uint64
}

// RecoveryResult holds both figures' series (they come from the same runs,
// as in the paper).
type RecoveryResult struct {
	Series map[string][]RecoveryPoint // by copy granularity
	Order  []string
}

// RunRecovery reproduces Figures 8 and 9: a machine failure is induced
// while a TPC-W shopping-mix workload runs, and the failed machine's
// databases are re-replicated with 1..N concurrent recovery threads, once
// with database-granularity copying and once with table-granularity
// copying. Figure 8 reports proactively rejected transactions per
// recovering database (higher for database-level copying); Figure 9 reports
// throughput during recovery (about the same for both).
func RunRecovery(cfg Config) RecoveryResult {
	threads := []int{1, 2, 4}
	numDBs := 6
	sizeMB := 120.0
	if cfg.Quick {
		threads = []int{1, 2}
		numDBs = 3
		sizeMB = 60
	}
	res := RecoveryResult{Series: make(map[string][]RecoveryPoint)}
	for _, gran := range []sqldb.DumpGranularity{sqldb.GranularityDatabase, sqldb.GranularityTable} {
		name := gran.String() + "-level"
		res.Order = append(res.Order, name)
		for _, th := range threads {
			res.Series[name] = append(res.Series[name], runRecoveryPoint(gran, th, numDBs, sizeMB, cfg))
		}
	}
	return res
}

func runRecoveryPoint(gran sqldb.DumpGranularity, threads, numDBs int, sizeMB float64, cfg Config) RecoveryPoint {
	engCfg := cfg.engineConfig()
	// Slow the "disk" down so the copy window is long enough for client
	// writes to collide with it, as a 2-minute 200 MB copy did in the
	// paper's testbed.
	engCfg.MissLatency = 2 * time.Millisecond
	engCfg.PoolPages = 64
	engCfg.LockTimeout = 500 * time.Millisecond
	if cfg.Quick {
		engCfg.LockTimeout = 200 * time.Millisecond
	}
	c := core.NewCluster("rec", core.Options{
		ReadOption:      core.ReadOption1,
		AckMode:         core.Conservative,
		Replicas:        2,
		CopyGranularity: gran,
		EngineConfig:    engCfg,
	})
	if _, err := c.AddMachines(4); err != nil {
		panic(err)
	}
	scale := tpcw.ScaleForMB(sizeMB, cfg.Seed)
	dbs := make([]clusterDB, numDBs)
	workloads := make([]*tpcw.Workload, numDBs)
	for i := range dbs {
		name := fmt.Sprintf("app%d", i)
		if err := c.CreateDatabase(name); err != nil {
			panic(err)
		}
		dbs[i] = clusterDB{c: c, db: name}
		if err := tpcw.Load(dbs[i], scale); err != nil {
			panic(err)
		}
		workloads[i] = tpcw.NewWorkload(scale)
	}

	// Drive an ordering-mix workload (write-heavy: rejections are a
	// write-side phenomenon) against every database.
	sessions := numDBs * 2
	if cfg.Quick {
		sessions = numDBs
	}
	stop := make(chan struct{})
	results := make(chan tpcw.Stats, sessions)
	for s := 0; s < sessions; s++ {
		client := &tpcw.Client{
			DB:            dbs[s%numDBs],
			Mix:           tpcw.OrderingMix,
			Workload:      workloads[s%numDBs],
			Classify:      classify,
			RejectBackoff: time.Millisecond,
		}
		go func(seed int64) { results <- client.RunSession(seed, stop) }(cfg.Seed + int64(s)*7919)
	}

	// Let the workload warm up, then fail a machine and recover.
	time.Sleep(cfg.measureDuration() / 4)
	victim := c.MachineIDs()[0]
	affected, err := c.FailMachine(victim)
	if err != nil {
		panic(err)
	}
	before := c.Stats()
	start := time.Now()
	report := c.RecoverDatabases(affected, threads)
	recovery := time.Since(start)
	// Keep the workload running over a minimum window so the
	// throughput-during-recovery measurement is stable even when the copy
	// itself finishes quickly.
	if min := cfg.measureDuration() / 2; recovery < min {
		time.Sleep(min - recovery)
	}
	window := time.Since(start)
	after := c.Stats()
	close(stop)

	var total tpcw.Stats
	for s := 0; s < sessions; s++ {
		st := <-results
		total.Committed += st.Committed
		total.Rejected += st.Rejected
		total.Fatal += st.Fatal
	}

	pt := RecoveryPoint{
		Threads:        threads,
		RecoveryTime:   recovery,
		RecoveredDBs:   len(report.Recovered),
		TotalCommitted: total.Committed,
		Fatal:          total.Fatal,
	}
	rejected := after.Rejected - before.Rejected
	if len(affected) > 0 {
		pt.RejectedPerDB = float64(rejected) / float64(len(affected))
	}
	if window > 0 {
		// Committed during the recovery window, approximated by the
		// cluster-wide commit delta over the window.
		pt.TPSDuring = float64(after.Committed-before.Committed) / window.Seconds()
	}
	return pt
}

// RenderRejected formats Figure 8.
func (r RecoveryResult) RenderRejected() *Table {
	t := &Table{Title: "Figure 8: Rejected Transactions during Recovery (per recovering database)"}
	t.Header = []string{"series"}
	if len(r.Order) > 0 {
		for _, pt := range r.Series[r.Order[0]] {
			t.Header = append(t.Header, fmt.Sprintf("threads=%d", pt.Threads))
		}
	}
	for _, name := range r.Order {
		row := []string{name}
		for _, pt := range r.Series[name] {
			row = append(row, f1(pt.RejectedPerDB))
		}
		t.AddRow(row...)
	}
	return t
}

// RenderThroughput formats Figure 9.
func (r RecoveryResult) RenderThroughput() *Table {
	t := &Table{Title: "Figure 9: Throughput during Recovery (TPS)"}
	t.Header = []string{"series"}
	if len(r.Order) > 0 {
		for _, pt := range r.Series[r.Order[0]] {
			t.Header = append(t.Header, fmt.Sprintf("threads=%d", pt.Threads))
		}
	}
	for _, name := range r.Order {
		row := []string{name}
		for _, pt := range r.Series[name] {
			row = append(row, f1(pt.TPSDuring))
		}
		t.AddRow(row...)
	}
	return t
}
