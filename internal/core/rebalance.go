package core

import (
	"sdp/internal/sla"
)

// The paper leaves "more sophisticated methods for allocating databases to
// machines" as future work and restricts Algorithm 2 to never move existing
// databases. This file implements the natural extension it gestures at: a
// greedy rebalancer that migrates replicas of SLA-managed databases off the
// most-loaded machine whenever that strictly reduces the cluster's peak
// utilisation. Every move goes through MigrateReplica, so serving
// transactions are never interrupted and each move counts against the SLA's
// reallocation_rate.

// Move records one replica migration performed by Rebalance.
type Move struct {
	DB   string
	From string
	To   string
}

// RebalanceReport summarises a Rebalance run.
type RebalanceReport struct {
	Moves []Move
	// PeakBefore and PeakAfter are the maximum machine utilisations (the
	// dominant resource dimension, as a fraction of capacity) before and
	// after.
	PeakBefore float64
	PeakAfter  float64
}

// utilisation returns the machine's dominant-dimension load fraction.
func (m *Machine) utilisation() float64 {
	used := m.Used()
	cap := m.Capacity()
	frac := func(u, c float64) float64 {
		if c <= 0 {
			return 0
		}
		return u / c
	}
	max := frac(used.CPU, cap.CPU)
	if f := frac(used.Memory, cap.Memory); f > max {
		max = f
	}
	if f := frac(used.Disk, cap.Disk); f > max {
		max = f
	}
	if f := frac(used.DiskBW, cap.DiskBW); f > max {
		max = f
	}
	return max
}

// Rebalance migrates up to maxMoves replicas to reduce the cluster's peak
// machine utilisation. It only considers databases placed with PlaceWithSLA
// (those carry a resource requirement); a move is performed only when the
// peak strictly decreases and the target has capacity.
func (c *Cluster) Rebalance(maxMoves int) (RebalanceReport, error) {
	report := RebalanceReport{PeakBefore: c.peakUtilisation()}
	report.PeakAfter = report.PeakBefore
	for len(report.Moves) < maxMoves {
		move, ok := c.planMove()
		if !ok {
			break
		}
		if err := c.MigrateReplica(move.DB, move.From, move.To); err != nil {
			// Capacity may have changed under us; stop rather than loop.
			return report, err
		}
		report.Moves = append(report.Moves, move)
		report.PeakAfter = c.peakUtilisation()
	}
	return report, nil
}

// peakUtilisation returns the highest live-machine utilisation.
func (c *Cluster) peakUtilisation() float64 {
	c.mu.Lock()
	ms := make([]*Machine, 0, len(c.machines))
	for _, m := range c.machines {
		if !m.Failed() {
			ms = append(ms, m)
		}
	}
	c.mu.Unlock()
	peak := 0.0
	for _, m := range ms {
		if u := m.utilisation(); u > peak {
			peak = u
		}
	}
	return peak
}

// planMove finds the best single migration: take the most-loaded machine,
// and try to move one of its SLA-managed replicas to the least-loaded
// machine that fits it, provided the peak strictly improves.
func (c *Cluster) planMove() (Move, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Most-loaded live machine.
	var hottest *Machine
	for _, id := range c.order {
		m := c.machines[id]
		if m.Failed() {
			continue
		}
		if hottest == nil || m.utilisation() > hottest.utilisation() {
			hottest = m
		}
	}
	if hottest == nil {
		return Move{}, false
	}
	peak := hottest.utilisation()

	// Its SLA-managed databases, largest requirement first would be
	// classic; we simply scan in name order for determinism.
	for _, db := range hottest.Engine().Databases() {
		ds := c.dbs[db]
		if ds == nil || ds.req == (sla.Resources{}) || ds.copying != nil {
			continue
		}
		if !contains(ds.replicas, hottest.id) {
			continue
		}
		// Candidate targets: live machines not hosting db, coldest first.
		var best *Machine
		for _, id := range c.order {
			m := c.machines[id]
			if m.Failed() || m == hottest || contains(ds.replicas, id) {
				continue
			}
			if !m.Used().Add(ds.req).Fits(m.Capacity()) {
				continue
			}
			if best == nil || m.utilisation() < best.utilisation() {
				best = m
			}
		}
		if best == nil {
			continue
		}
		// Does the move strictly reduce the peak? After the move the
		// hottest machine drops by the db's share; the target rises.
		hotAfter := utilOf(hottest.Used().Sub(ds.req), hottest.Capacity())
		tgtAfter := utilOf(best.Used().Add(ds.req), best.Capacity())
		newPeak := hotAfter
		if tgtAfter > newPeak {
			newPeak = tgtAfter
		}
		if newPeak+1e-9 < peak {
			return Move{DB: db, From: hottest.id, To: best.id}, true
		}
	}
	return Move{}, false
}

func utilOf(used, cap sla.Resources) float64 {
	frac := func(u, c float64) float64 {
		if c <= 0 {
			return 0
		}
		return u / c
	}
	max := frac(used.CPU, cap.CPU)
	if f := frac(used.Memory, cap.Memory); f > max {
		max = f
	}
	if f := frac(used.Disk, cap.Disk); f > max {
		max = f
	}
	if f := frac(used.DiskBW, cap.DiskBW); f > max {
		max = f
	}
	return max
}
