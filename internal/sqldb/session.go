package sqldb

import "fmt"

// Session is a stateful connection to one database of an engine, handling
// SQL-level transaction control: BEGIN opens a transaction, COMMIT/ROLLBACK
// close it, and any other statement executes inside the open transaction or
// autocommits. This mirrors how a driver connection to the paper's MySQL
// instances behaves. A Session must be used from one goroutine.
type Session struct {
	engine *Engine
	db     string
	txn    *Txn
}

// Session opens a session on the named database.
func (e *Engine) Session(db string) *Session {
	return &Session{engine: e, db: db}
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.txn != nil }

// Exec executes one statement with session transaction semantics. Statement
// text is parsed and planned through the engine's shared plan cache, so
// repeated statements (with or without ? parameters) skip the parser.
func (s *Session) Exec(sql string, params ...Value) (*Result, error) {
	stmt, plan, err := s.engine.cachedStatement(s.db, sql)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *BeginStmt:
		if s.txn != nil {
			return nil, fmt.Errorf("sqldb: transaction already open")
		}
		txn, err := s.engine.Begin(s.db)
		if err != nil {
			return nil, err
		}
		s.txn = txn
		return &Result{}, nil
	case *CommitStmt:
		if s.txn == nil {
			return nil, fmt.Errorf("sqldb: no open transaction")
		}
		err := s.txn.Commit()
		s.txn = nil
		return &Result{}, err
	case *RollbackStmt:
		if s.txn == nil {
			return nil, fmt.Errorf("sqldb: no open transaction")
		}
		err := s.txn.Rollback()
		s.txn = nil
		return &Result{}, err
	}

	if s.txn != nil {
		res, err := s.txn.execPlanned(stmt, plan, params, nil)
		if err != nil && isAbortError(err) {
			// The engine rolled the transaction back (deadlock victim or
			// timeout); the session's transaction is gone.
			s.txn = nil
		}
		return res, err
	}

	// Autocommit. A single SELECT (or EXPLAIN) is its own read-only
	// transaction, so it may use the optimistic lock-free read path; with no
	// other statement in the transaction its validation cannot conflict.
	var txn *Txn
	switch stmt.(type) {
	case *SelectStmt, *ExplainStmt:
		txn, err = s.engine.BeginReadOnly(s.db)
	default:
		txn, err = s.engine.Begin(s.db)
	}
	if err != nil {
		return nil, err
	}
	res, err := txn.execPlanned(stmt, plan, params, nil)
	if err != nil {
		_ = txn.Rollback()
		return nil, err
	}
	if err := txn.Commit(); err != nil {
		return nil, err
	}
	return res, nil
}

// Close rolls back any open transaction.
func (s *Session) Close() {
	if s.txn != nil {
		_ = s.txn.Rollback()
		s.txn = nil
	}
}
