package core

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// RecoveryReport summarises one recovery run.
type RecoveryReport struct {
	Recovered []string         // databases successfully re-replicated
	Failed    map[string]error // databases whose recovery failed
}

// RecoverDatabases re-replicates each named database onto a fresh machine,
// running up to `threads` concurrent copy processes — the x-axis of the
// paper's Figure 8/9 recovery experiments. Targets are chosen
// least-loaded-first among live machines not already hosting the database.
func (c *Cluster) RecoverDatabases(dbs []string, threads int) RecoveryReport {
	if threads <= 0 {
		threads = 1
	}
	report := RecoveryReport{Failed: make(map[string]error)}
	var mu sync.Mutex

	work := make(chan string)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for db := range work {
				start := time.Now()
				err := c.recoverOne(db)
				c.metrics.recoverySeconds.ObserveDuration(time.Since(start))
				mu.Lock()
				if err != nil {
					report.Failed[db] = err
					c.metrics.recoveryTotal.With("failed").Inc()
					c.metrics.reg.TraceEvent("recovery", db, "failed", err.Error())
				} else {
					report.Recovered = append(report.Recovered, db)
					c.metrics.recoveryTotal.With("recovered").Inc()
					c.metrics.reg.TraceEvent("recovery", db, "recovered", "")
				}
				mu.Unlock()
			}
		}()
	}
	for _, db := range dbs {
		work <- db
	}
	close(work)
	wg.Wait()
	sort.Strings(report.Recovered)
	return report
}

// recoverOne picks a target machine and creates the replica.
func (c *Cluster) recoverOne(db string) error {
	target, err := c.pickRecoveryTarget(db)
	if err != nil {
		return err
	}
	return c.CreateReplica(db, target)
}

// pickRecoveryTarget returns the live machine with the fewest hosted
// databases that does not already host db.
func (c *Cluster) pickRecoveryTarget(db string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, ok := c.dbs[db]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	best := ""
	var bestN int32
	for _, id := range c.order {
		m := c.machines[id]
		if m.Failed() || contains(ds.replicas, id) {
			continue
		}
		if ds.copying != nil && ds.copying.target == id {
			continue
		}
		if n := m.dbCount.Load(); best == "" || n < bestN {
			best, bestN = id, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: no machine can host a new replica of %s", ErrNoReplicas, db)
	}
	return best, nil
}
