package sqldb

import (
	"fmt"
)

// The dump tool models mysqldump: each table is copied under a table read
// lock, which blocks writers to that table for the duration of the table's
// copy. The cluster controller builds its online replica-creation protocol
// (the paper's Algorithm 1) on top of these primitives.

// TableDump is the copied image of one table.
type TableDump struct {
	Schema  *Schema
	Rows    []Row
	Indexes []IndexDef
}

// IndexDef describes a secondary index for re-creation on restore.
type IndexDef struct {
	Name   string
	Col    string
	Unique bool
}

// DumpGranularity selects the copy tool's locking unit, as in the paper's
// recovery experiments: table-level copying locks one table at a time
// (higher concurrency, some rejected writes per Algorithm 1), while
// database-level copying holds read locks on every table for the whole copy.
type DumpGranularity int

// Dump granularities.
const (
	// GranularityTable locks and copies one table at a time.
	GranularityTable DumpGranularity = iota
	// GranularityDatabase locks all tables up front and holds the locks
	// until the entire database has been copied.
	GranularityDatabase
)

// String names the granularity.
func (g DumpGranularity) String() string {
	if g == GranularityDatabase {
		return "database"
	}
	return "table"
}

// DumpObserver receives per-table progress callbacks from DumpDatabase. The
// cluster controller uses these to maintain the copied-set/in-flight state
// that Algorithm 1 needs. Either callback may be nil.
type DumpObserver struct {
	// TableStart is called after the table's read lock is acquired and
	// before its rows are copied.
	TableStart func(table string)
	// TableDone is called after the table's rows are copied; under
	// GranularityTable the read lock has been released by this point.
	TableDone func(table string, d TableDump)
}

// DumpDatabase copies every table of a database, honouring the granularity's
// locking protocol, and returns the copied images in the order copied.
func (e *Engine) DumpDatabase(db string, g DumpGranularity, obs DumpObserver) ([]TableDump, error) {
	names := e.Tables(db)
	if !e.HasDatabase(db) {
		return nil, fmt.Errorf("%w: database %s", ErrNoTable, db)
	}

	switch g {
	case GranularityDatabase:
		// One transaction holds S locks on all tables until the copy ends.
		t, err := e.Begin(db)
		if err != nil {
			return nil, err
		}
		defer func() { _ = t.Commit() }()
		// Lock in sorted (deterministic) order to avoid lock-order cycles
		// between concurrent dumps.
		tables := make([]*Table, 0, len(names))
		for _, name := range names {
			tbl, err := e.Table(db, name)
			if err != nil {
				return nil, err
			}
			if err := t.lockTable(tbl, LockS); err != nil {
				return nil, err
			}
			tables = append(tables, tbl)
		}
		out := make([]TableDump, 0, len(tables))
		for _, tbl := range tables {
			if obs.TableStart != nil {
				obs.TableStart(tbl.Name())
			}
			d := copyTable(tbl)
			out = append(out, d)
			if obs.TableDone != nil {
				obs.TableDone(tbl.Name(), d)
			}
		}
		return out, nil

	default:
		// Table granularity: a short transaction per table so the read lock
		// is released as soon as that table's copy completes.
		out := make([]TableDump, 0, len(names))
		for _, name := range names {
			tbl, err := e.Table(db, name)
			if err != nil {
				return nil, err
			}
			t, err := e.Begin(db)
			if err != nil {
				return nil, err
			}
			if err := t.lockTable(tbl, LockS); err != nil {
				_ = t.Rollback()
				return nil, err
			}
			if obs.TableStart != nil {
				obs.TableStart(tbl.Name())
			}
			d := copyTable(tbl)
			if err := t.Commit(); err != nil {
				return nil, err
			}
			out = append(out, d)
			if obs.TableDone != nil {
				obs.TableDone(tbl.Name(), d)
			}
		}
		return out, nil
	}
}

// DumpTableWith copies one table under its read lock and invokes fn with
// the image while the lock is still held. The cluster controller's online
// replica creation (the paper's Algorithm 1) uses this so that the copied
// table is installed on the target machine before writers on the source can
// resume — otherwise a write executing right after the lock release could
// reach the source but miss the target.
func (e *Engine) DumpTableWith(db, table string, fn func(TableDump) error) error {
	tbl, err := e.Table(db, table)
	if err != nil {
		return err
	}
	t, err := e.Begin(db)
	if err != nil {
		return err
	}
	if err := t.lockTable(tbl, LockS); err != nil {
		_ = t.Rollback()
		return err
	}
	d := copyTable(tbl)
	if fn != nil {
		if err := fn(d); err != nil {
			_ = t.Rollback()
			return err
		}
	}
	return t.Commit()
}

// copyTable snapshots a table's schema, rows and index definitions. The
// caller holds a table S lock, so the image is transactionally consistent.
func copyTable(tbl *Table) TableDump {
	d := TableDump{Schema: tbl.Schema().Clone()}
	tbl.scanCold(func(_ uint64, r Row) bool {
		d.Rows = append(d.Rows, r)
		return true
	})
	tbl.mu.Lock()
	for _, idx := range tbl.indexes {
		d.Indexes = append(d.Indexes, IndexDef{
			Name:   idx.name,
			Col:    tbl.schema.Cols[idx.col].Name,
			Unique: idx.unique,
		})
	}
	tbl.mu.Unlock()
	return d
}

// RestoreTable creates a table from a dump image and bulk-loads its rows,
// bypassing transactional bookkeeping (the table is not yet serving client
// traffic). Used by the replica-creation process on the target machine.
func (e *Engine) RestoreTable(db string, d TableDump) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrEngineClosed
	}
	tables, ok := e.dbs[db]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: database %s", ErrNoTable, db)
	}
	key := lower(d.Schema.Table)
	if _, exists := tables[key]; exists {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrTableExists, d.Schema.Table)
	}
	tbl := newTable(e, qualified(db, d.Schema.Table), d.Schema.Clone())
	tables[key] = tbl
	e.mu.Unlock()
	// Cached "no such table" knowledge (e.g. non-cacheable plans that were
	// derived before the restore) must not outlive the table's appearance.
	e.plans.invalidateTables(db, key)

	for _, r := range d.Rows {
		rowID := tbl.allocRowID()
		tbl.insertRowPhysical(rowID, r)
	}
	for _, idx := range d.Indexes {
		colIdx := tbl.schema.ColIndex(idx.Col)
		if colIdx < 0 {
			return fmt.Errorf("%w: %s.%s", ErrNoColumn, d.Schema.Table, idx.Col)
		}
		if err := tbl.createIndex(idx.Name, colIdx, idx.Unique); err != nil {
			return err
		}
	}
	return nil
}
