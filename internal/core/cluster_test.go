package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sdp/internal/sqldb"
)

// newTestCluster builds a cluster with n machines and one database "app"
// replicated per opts.
func newTestCluster(t *testing.T, n int, opts Options) *Cluster {
	t.Helper()
	c := NewCluster("test", opts)
	if _, err := c.AddMachines(n); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	return c
}

func clusterExec(t *testing.T, c *Cluster, sql string, params ...sqldb.Value) *sqldb.Result {
	t.Helper()
	res, err := c.Exec("app", sql, params...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestClusterBasicReplication(t *testing.T) {
	c := newTestCluster(t, 3, Options{Replicas: 2})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 10)")
	clusterExec(t, c, "UPDATE t SET n = 20 WHERE id = 1")

	// Both replicas must hold identical data.
	reps, err := c.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("replicas = %v", reps)
	}
	for _, id := range reps {
		m, _ := c.Machine(id)
		res, err := m.Engine().Exec("app", "SELECT n FROM t WHERE id = 1")
		if err != nil {
			t.Fatalf("replica %s: %v", id, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Int != 20 {
			t.Errorf("replica %s rows = %v", id, res.Rows)
		}
	}
}

func TestClusterReadRouting(t *testing.T) {
	for _, opt := range []ReadOption{ReadOption1, ReadOption2, ReadOption3} {
		t.Run(opt.String(), func(t *testing.T) {
			c := newTestCluster(t, 2, Options{Replicas: 2, ReadOption: opt})
			clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
			clusterExec(t, c, "INSERT INTO t VALUES (1, 42)")
			for i := 0; i < 10; i++ {
				res := clusterExec(t, c, "SELECT n FROM t WHERE id = 1")
				if res.Rows[0][0].Int != 42 {
					t.Fatalf("read %d: %v", i, res.Rows)
				}
			}
		})
	}
}

func TestClusterOption1ReadsOneMachine(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2, ReadOption: ReadOption1})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 1)")
	before := make(map[string]sqldb.PoolStats)
	for _, id := range c.MachineIDs() {
		m, _ := c.Machine(id)
		before[id] = m.Engine().Pool().Stats()
	}
	for i := 0; i < 20; i++ {
		clusterExec(t, c, "SELECT n FROM t WHERE id = 1")
	}
	// With Option 1 every read goes to the home replica, so at most one
	// machine's pool sees new traffic from reads. (Writes touched both
	// earlier, so compare deltas.)
	touched := 0
	for _, id := range c.MachineIDs() {
		m, _ := c.Machine(id)
		after := m.Engine().Pool().Stats()
		if after.Hits+after.Misses > before[id].Hits+before[id].Misses {
			touched++
		}
	}
	if touched > 1 {
		t.Errorf("Option 1 reads touched %d machines, want <= 1", touched)
	}
}

func TestClusterTransactionAcrossReplicas(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2})
	clusterExec(t, c, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
	clusterExec(t, c, "INSERT INTO acct VALUES (1, 100), (2, 100)")

	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE acct SET bal = bal - 10 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE acct SET bal = bal + 10 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	for _, id := range c.MachineIDs() {
		m, _ := c.Machine(id)
		res, err := m.Engine().Exec("app", "SELECT SUM(bal) FROM acct")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int != 200 {
			t.Errorf("machine %s sum = %v", id, res.Rows[0][0])
		}
	}
}

func TestClusterRollbackAllReplicas(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 1)")
	tx, _ := c.Begin("app")
	if _, err := tx.Exec("UPDATE t SET n = 99 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	for _, id := range c.MachineIDs() {
		m, _ := c.Machine(id)
		res, _ := m.Engine().Exec("app", "SELECT n FROM t WHERE id = 1")
		if res.Rows[0][0].Int != 1 {
			t.Errorf("machine %s: rollback not applied, n = %v", id, res.Rows[0][0])
		}
	}
}

func TestClusterTxnAfterFinish(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY)")
	tx, _ := c.Begin("app")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("SELECT 1 FROM t"); !errors.Is(err, ErrTxnDone) {
		t.Errorf("err = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("rollback after commit: %v", err)
	}
}

func TestClusterConflictingWritersSerialize(t *testing.T) {
	for _, mode := range []AckMode{Conservative, Aggressive} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := sqldb.DefaultConfig()
			cfg.LockTimeout = 100 * time.Millisecond // distributed deadlocks resolve fast
			c := newTestCluster(t, 2, Options{Replicas: 2, AckMode: mode, EngineConfig: cfg})
			clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
			clusterExec(t, c, "INSERT INTO t VALUES (1, 0)")
			done := make(chan error, 8)
			for w := 0; w < 8; w++ {
				go func() {
					for i := 0; i < 10; i++ {
						tx, err := c.Begin("app")
						if err != nil {
							done <- err
							return
						}
						_, err = tx.Exec("UPDATE t SET n = n + 1 WHERE id = 1")
						if err != nil {
							_ = tx.Rollback()
							if IsRetryable(err) {
								i--
								continue
							}
							done <- err
							return
						}
						if err := tx.Commit(); err != nil {
							if IsRetryable(err) || errors.Is(err, sqldb.ErrDeadlock) {
								i--
								continue
							}
							done <- err
							return
						}
					}
					done <- nil
				}()
			}
			for w := 0; w < 8; w++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			res := clusterExec(t, c, "SELECT n FROM t WHERE id = 1")
			if res.Rows[0][0].Int != 80 {
				t.Errorf("n = %v, want 80 (lost updates)", res.Rows[0][0])
			}
			// Replicas agree.
			for _, id := range c.MachineIDs() {
				m, _ := c.Machine(id)
				r, _ := m.Engine().Exec("app", "SELECT n FROM t WHERE id = 1")
				if r.Rows[0][0].Int != 80 {
					t.Errorf("machine %s n = %v", id, r.Rows[0][0])
				}
			}
		})
	}
}

func TestCreateDatabaseErrors(t *testing.T) {
	c := NewCluster("test", Options{Replicas: 2})
	if _, err := c.AddMachines(1); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("app"); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("err = %v, want ErrNoReplicas", err)
	}
	if _, err := c.AddMachines(1); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("app"); !errors.Is(err, ErrDatabaseExists) {
		t.Errorf("err = %v, want ErrDatabaseExists", err)
	}
	if _, err := c.Begin("missing"); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("err = %v", err)
	}
}

func TestDropDatabase(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY)")
	if err := c.DropDatabase("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin("app"); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("err = %v", err)
	}
	if err := c.DropDatabase("app"); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("double drop: %v", err)
	}
}

func TestLeastLoadedPlacement(t *testing.T) {
	c := NewCluster("test", Options{Replicas: 2})
	if _, err := c.AddMachines(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := c.CreateDatabase(fmt.Sprintf("db%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// 6 dbs x 2 replicas over 4 machines: perfectly balanced = 3 each.
	for _, id := range c.MachineIDs() {
		m, _ := c.Machine(id)
		if n := m.dbCount.Load(); n != 3 {
			t.Errorf("machine %s hosts %d dbs, want 3", id, n)
		}
	}
}

func TestClusterStats(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY)")
	clusterExec(t, c, "INSERT INTO t VALUES (1)")
	tx, _ := c.Begin("app")
	_, _ = tx.Exec("INSERT INTO t VALUES (2)")
	_ = tx.Rollback()
	s := c.Stats()
	if s.Committed < 2 || s.Aborted < 1 {
		t.Errorf("stats = %+v", s)
	}
}
