package sqldb

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sdp/internal/obs"
)

// PlanCacheStats reports plan-cache activity counters. A hit means the
// engine skipped the lexer, the parser and access-path planning for a
// statement; a miss paid for at least re-planning (and, for text lookups,
// a full re-parse).
type PlanCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits/(hits+misses), or 0 when no lookups were made.
func (s PlanCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// defaultPlanCacheSize is the text-cache capacity used when the engine
// configuration does not specify one.
const defaultPlanCacheSize = 512

// memoCapacity bounds the pointer-keyed plan memo. The memo is cleared
// wholesale when it overflows; it only ever holds plans that can be
// recomputed from the statement.
const memoCapacity = 4096

// planCache is the engine's statement cache: a concurrency-safe LRU mapping
// (database, SQL text) to the parsed statement plus its precomputed
// access-path plan, and a pointer-keyed memo for callers that hold
// pre-parsed statements (the cluster controller parses once and executes the
// same Statement on every replica engine).
//
// Invalidation is two-layered. Every DDL statement bumps gen, and a plan
// whose generation does not match is re-derived before use — this is what
// guarantees a stale plan never reads a dropped table or misses a newly
// created index. Additionally, DDL on a table evicts every cached entry
// referencing that table, so dropped-table plans do not linger in memory.
type planCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used

	memo     atomic.Pointer[sync.Map]
	memoSize atomic.Int64

	gen atomic.Uint64 // bumped by every DDL / catalog change

	// hitMiss packs hits (A) and misses (B) into one word so stats
	// snapshots are never torn (see obs.Pair).
	hitMiss   obs.Pair
	evictions atomic.Uint64
}

// planEntry is one resident text-cache entry.
type planEntry struct {
	key  string
	stmt Statement
	plan *stmtPlan
}

// memoKey keys the pointer memo: the same parsed statement may execute
// against different databases of one engine with different plans.
type memoKey struct {
	stmt Statement
	db   string
}

func newPlanCache(capacity int) *planCache {
	if capacity == 0 {
		capacity = defaultPlanCacheSize
	}
	pc := &planCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
	pc.memo.Store(&sync.Map{})
	return pc
}

// disabled reports whether plan caching is off (negative configured size).
func (pc *planCache) disabled() bool { return pc.capacity < 0 }

func planKey(db, sql string) string { return db + "\x00" + sql }

// get returns the cached statement and plan for (db, sql).
func (pc *planCache) get(db, sql string) (Statement, *stmtPlan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[planKey(db, sql)]
	if !ok {
		return nil, nil, false
	}
	pc.lru.MoveToFront(el)
	e := el.Value.(*planEntry)
	return e.stmt, e.plan, true
}

// put installs (or refreshes) the entry for (db, sql), evicting the least
// recently used entry when the cache is full.
func (pc *planCache) put(db, sql string, stmt Statement, plan *stmtPlan) {
	key := planKey(db, sql)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[key]; ok {
		e := el.Value.(*planEntry)
		e.stmt, e.plan = stmt, plan
		pc.lru.MoveToFront(el)
		return
	}
	el := pc.lru.PushFront(&planEntry{key: key, stmt: stmt, plan: plan})
	pc.entries[key] = el
	for pc.lru.Len() > pc.capacity {
		oldest := pc.lru.Back()
		pc.lru.Remove(oldest)
		delete(pc.entries, oldest.Value.(*planEntry).key)
		pc.evictions.Add(1)
	}
}

// bumpGen invalidates every cached plan (they re-derive lazily on next use).
func (pc *planCache) bumpGen() { pc.gen.Add(1) }

// invalidateTables evicts every text-cache entry of db that references one
// of the given (lower-cased) table names, and bumps the generation so memoed
// plans re-derive too.
func (pc *planCache) invalidateTables(db string, tables ...string) {
	pc.bumpGen()
	prefix := db + "\x00"
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var victims []*list.Element
	for key, el := range pc.entries {
		if len(key) < len(prefix) || key[:len(prefix)] != prefix {
			continue
		}
		e := el.Value.(*planEntry)
		if e.plan == nil {
			continue
		}
		for _, ref := range e.plan.tables {
			for _, t := range tables {
				if ref == t {
					victims = append(victims, el)
				}
			}
		}
	}
	for _, el := range victims {
		delete(pc.entries, el.Value.(*planEntry).key)
		pc.lru.Remove(el)
		pc.evictions.Add(1)
	}
}

// invalidateDB evicts every text-cache entry of db (DROP DATABASE).
func (pc *planCache) invalidateDB(db string) {
	pc.bumpGen()
	prefix := db + "\x00"
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for key, el := range pc.entries {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			delete(pc.entries, key)
			pc.lru.Remove(el)
			pc.evictions.Add(1)
		}
	}
}

// len returns the number of resident text-cache entries.
func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}

// stats returns a snapshot of the counters. The hit/miss pair comes from
// one atomic word and is never torn.
func (pc *planCache) stats() PlanCacheStats {
	hits, misses := pc.hitMiss.Load()
	return PlanCacheStats{
		Hits:      hits,
		Misses:    misses,
		Evictions: pc.evictions.Load(),
	}
}

// memoLoad returns the memoed plan for (stmt, db) if it is current.
func (pc *planCache) memoLoad(db string, stmt Statement) (*stmtPlan, bool) {
	v, ok := pc.memo.Load().Load(memoKey{stmt: stmt, db: db})
	if !ok {
		return nil, false
	}
	p := v.(*stmtPlan)
	if p.gen != pc.gen.Load() {
		return nil, false
	}
	return p, true
}

// memoStore installs a plan in the pointer memo, clearing the memo wholesale
// if it grew past its capacity (plans are recomputable; losing them is only
// a performance event).
func (pc *planCache) memoStore(db string, stmt Statement, plan *stmtPlan) {
	m := pc.memo.Load()
	key := memoKey{stmt: stmt, db: db}
	if _, loaded := m.LoadOrStore(key, plan); loaded {
		m.Store(key, plan)
		return
	}
	if pc.memoSize.Add(1) > memoCapacity {
		pc.memo.Store(&sync.Map{})
		pc.memoSize.Store(0)
	}
}

// StmtCache is a concurrency-safe LRU cache of parsed statements keyed by
// SQL text. It carries no access-path plans and no catalog references, so
// one cache can serve statements routed to any number of engines — the
// cluster controller uses it to parse each distinct statement once and
// execute the shared (immutable) AST on every replica.
type StmtCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      *list.List
}

// stmtEntry is one resident statement-cache entry.
type stmtEntry struct {
	sql  string
	stmt Statement
}

// NewStmtCache creates a statement cache holding at most capacity parsed
// statements; capacity <= 0 selects a default.
func NewStmtCache(capacity int) *StmtCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheSize
	}
	return &StmtCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// Parse returns the parsed form of sql, serving repeats from the cache.
// Parse errors are not cached (they are not hot paths).
func (c *StmtCache) Parse(sql string) (Statement, error) {
	c.mu.Lock()
	if el, ok := c.entries[sql]; ok {
		c.lru.MoveToFront(el)
		stmt := el.Value.(*stmtEntry).stmt
		c.mu.Unlock()
		return stmt, nil
	}
	c.mu.Unlock()

	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[sql]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*stmtEntry).stmt, nil
	}
	el := c.lru.PushFront(&stmtEntry{sql: sql, stmt: stmt})
	c.entries[sql] = el
	for c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*stmtEntry).sql)
	}
	return stmt, nil
}

// Len returns the number of cached statements.
func (c *StmtCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
