// Package core implements the paper's cluster controller: the component
// that manages a set of single-node DBMS machines, replicates each client
// database across two or more of them with read-one-write-all + two-phase
// commit, routes reads according to the paper's Options 1/2/3, acknowledges
// writes conservatively or aggressively, keeps replicas consistent during
// online replica creation (Algorithm 1), and re-replicates databases when a
// machine fails.
package core

import (
	"time"

	"sdp/internal/history"
	"sdp/internal/netsim"
	"sdp/internal/obs"
	"sdp/internal/sla"
	"sdp/internal/sqldb"
	"sdp/internal/wal"
)

// ReadOption selects how the controller routes read operations among the
// replicas of a database (Section 3.1 of the paper).
type ReadOption int

// Read-routing options.
const (
	// ReadOption1 routes all reads of a database, regardless of
	// transaction, to the same replica. Best cache locality; serializable
	// under both acknowledgement modes.
	ReadOption1 ReadOption = 1
	// ReadOption2 routes all reads of one transaction to the same replica,
	// chosen per transaction. Serializable only with a conservative
	// controller.
	ReadOption2 ReadOption = 2
	// ReadOption3 routes each read operation independently. Most
	// load-balancing freedom; serializable only with a conservative
	// controller.
	ReadOption3 ReadOption = 3
)

// String names the option as in the paper.
func (o ReadOption) String() string {
	switch o {
	case ReadOption1:
		return "option1"
	case ReadOption2:
		return "option2"
	case ReadOption3:
		return "option3"
	default:
		return "option?"
	}
}

// AckMode selects when the controller acknowledges a write to the client.
type AckMode int

// Write-acknowledgement modes.
const (
	// Conservative waits for the write to complete on every replica before
	// returning to the client. Serializable under all read options.
	Conservative AckMode = iota
	// Aggressive returns as soon as one replica completes the write,
	// tracking the remaining replicas asynchronously and aborting the
	// transaction later if any of them failed. Not serializable under
	// Options 2 and 3 (Table 1).
	Aggressive
)

// String names the mode.
func (m AckMode) String() string {
	if m == Aggressive {
		return "aggressive"
	}
	return "conservative"
}

// Options configures a cluster controller.
type Options struct {
	// ReadOption is the read-routing policy (default ReadOption1).
	ReadOption ReadOption
	// AckMode is the write-acknowledgement policy (default Conservative).
	AckMode AckMode
	// Replicas is the number of machines each database is hosted on
	// (default 2, as in the paper's evaluation).
	Replicas int
	// CopyGranularity selects table- or database-level locking during
	// replica creation (default table-level).
	CopyGranularity sqldb.DumpGranularity
	// EngineConfig configures every machine's DBMS instance.
	EngineConfig sqldb.Config
	// Recorder, when non-nil, captures all data operations for offline
	// serializability checking.
	Recorder *history.Recorder
	// Metrics, when non-nil, is the observability registry the controller
	// reports into; the colo controller injects a shared registry so every
	// cluster, the colo, and the system controller feed one snapshot. Nil
	// gives the cluster a private registry (see Cluster.Metrics).
	Metrics *obs.Registry
	// SLAMonitor, when non-nil, receives one observation per finished
	// transaction (commit with latency, abort, or proactive rejection) and
	// a replica-location source, so declared SLAs are checked against what
	// this cluster actually delivers (see sla.Monitor).
	SLAMonitor *sla.Monitor
	// WAL, when non-nil, gives every machine a write-ahead log over a
	// simulated durable disk: commits are forced (with group commit) before
	// acknowledgement, and a failed machine can Restart and recover its
	// state by log replay instead of a full Algorithm-1 copy.
	WAL *wal.Config
	// Network, when non-nil, interposes a simulated network on every
	// controller→machine call (statement execution, 2PC phases, Algorithm 1
	// dump/apply): faults injected on its links surface as call errors, and
	// the controller becomes failure-aware — per-call deadlines, bounded
	// retries of idempotent phases, presumed abort on prepare timeouts, and
	// read routing around partitioned replicas. Nil keeps calls as direct
	// in-process invocations with zero overhead.
	Network *netsim.Network
	// CallTimeout bounds how long the coordinator waits for one machine's
	// 2PC PREPARE vote before presuming abort. Zero defaults to 2 seconds
	// when a Network is set and disables the deadline otherwise (an
	// in-process call cannot stall indefinitely; lock waits are bounded by
	// the engine's own lock timeout).
	CallTimeout time.Duration
	// RetryLimit is the maximum number of retries of one faulted machine
	// call (idempotent phases retry on any transient fault; non-idempotent
	// calls only when the request provably never executed). Default 4.
	RetryLimit int
	// RetryBackoff is the initial retry backoff, doubling per attempt.
	// Default 1ms.
	RetryBackoff time.Duration
	// Controllers, when ≥ 1, replicates the cluster controller's control
	// plane across this many consensus-backed replicas (see
	// internal/consensus): control mutations — machine membership, database
	// placement, Algorithm 1 copy lifecycle — commit to a replicated log
	// before taking effect, the leader serves the data path under a quorum
	// lease, and killing the leader fails over to a surviving replica.
	// Zero (the default) keeps the single-controller process-pair model.
	Controllers int
	// ControllerSeed seeds the controller replicas' election-timeout
	// randomization, for reproducible failover schedules.
	ControllerSeed int64
	// ControllerElectionTimeout is the consensus base election timeout
	// (default 60ms; see consensus.Config.ElectionTimeout).
	ControllerElectionTimeout time.Duration
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.ReadOption == 0 {
		o.ReadOption = ReadOption1
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	zero := sqldb.Config{}
	if o.EngineConfig == zero {
		o.EngineConfig = sqldb.DefaultConfig()
	}
	if o.Network != nil && o.CallTimeout == 0 {
		o.CallTimeout = 2 * time.Second
	}
	if o.RetryLimit <= 0 {
		o.RetryLimit = 4
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = time.Millisecond
	}
	return o
}
