package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"sdp/internal/consensus"
	"sdp/internal/obs"
	"sync"
)

// controlPlane replicates the cluster controller's control decisions across
// Options.Controllers consensus nodes (see internal/consensus). Every control
// mutation — machine membership, database placement, Algorithm 1 copy
// lifecycle — is proposed to the consensus log and materialized into the
// controller's routing state only after it commits, so any controller replica
// can take over after a crash and reconstruct the same decisions.
//
// The transaction data path stays off consensus: reads and writes route from
// the leader's materialized state under a quorum lease (refreshed each
// majority-acknowledged heartbeat round), so steady-state transactions never
// pay a log round trip. When no replica holds the lease — a leader just died
// and its successor has not finished its first heartbeat round — Begin
// refuses with the retryable ErrNotLeader and clients retry into the new
// term; the gap is the failover window BENCH_consensus.json measures.
type controlPlane struct {
	c     *Cluster
	group *consensus.Group
	nodes []*consensus.Node
	// states[i] is nodes[i]'s replicated state machine.
	states []*ctlState

	// electionTimeout mirrors the nodes' configured timeout, for deadlines.
	electionTimeout time.Duration
	// deadline bounds one proposal's retries across leader changes before
	// the control plane reports quorum loss (tests shorten it).
	deadline time.Duration

	// mu serializes propose+materialize sections against failover adoption,
	// so a new leader's full-state reconciliation never interleaves with a
	// half-materialized mutation. Never held while holding c.mu.
	mu sync.Mutex

	// adoptedTerm is the highest term whose new-leader adoption (barrier,
	// state reconciliation, orphaned-copy aborts, takeover) has fully
	// completed. While the current leader's term is ahead of it a failover
	// is still in progress and, e.g., a freshly started copy could be
	// swept up as an orphan. Guarded by mu.
	adoptedTerm uint64
}

// Proposal pacing: each attempt waits proposeCallTimeout for its entry to
// commit; attempts retry across leader changes until proposeDeadline, after
// which the control plane reports quorum loss.
const (
	proposeCallTimeout = time.Second
	proposeDeadline    = 5 * time.Second
)

// newControlPlane builds the consensus group for c with n controller
// replicas, registering consensus_* metrics on reg, and elects a bootstrap
// leader so the cluster is serviceable on return.
func newControlPlane(c *Cluster, n int, reg *obs.Registry) *controlPlane {
	cp := &controlPlane{
		c:               c,
		group:           consensus.NewGroup(c.opts.Network, reg),
		electionTimeout: c.opts.ControllerElectionTimeout,
		deadline:        proposeDeadline,
	}
	if cp.electionTimeout <= 0 {
		cp.electionTimeout = 60 * time.Millisecond
	}
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("%s#%d", c.endpoint, i)
	}
	for i := 0; i < n; i++ {
		st := newCtlState()
		idx := i
		node := cp.group.Add(consensus.Config{
			ID:              peers[i],
			Peers:           peers,
			ElectionTimeout: cp.electionTimeout,
			Seed:            c.opts.ControllerSeed + int64(i)*7919,
			OnLeader:        func(term uint64) { cp.onLeader(idx, term) },
		}, st)
		cp.states = append(cp.states, st)
		cp.nodes = append(cp.nodes, node)
	}
	// Bootstrap: elect node 0 synchronously so the first control operations
	// do not wait out an election timeout. Under a faulty network the
	// campaign can lose; the background tickers elect eventually.
	deadline := time.Now().Add(4 * cp.electionTimeout)
	for cp.group.Leader() == nil && time.Now().Before(deadline) {
		if cp.nodes[0].Campaign() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	return cp
}

// leaseOK reports whether some controller replica is leader under a live
// quorum lease. Lock free (atomic reads only); called on every Begin.
func (cp *controlPlane) leaseOK() bool {
	for _, n := range cp.nodes {
		if n.HasLease() {
			return true
		}
	}
	return false
}

// propose submits one control command to the replicated log and waits for it
// to commit and apply, retrying across leader changes. It returns the state
// machine's Apply result. All commands are idempotent, so retrying a
// timed-out proposal (whose outcome is unknown) is safe. When no leader
// emerges before the deadline the control plane has lost quorum.
func (cp *controlPlane) propose(cmd ctlCmd) (any, error) {
	data, err := json.Marshal(cmd)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(cp.deadline)
	for {
		n := cp.group.Leader()
		if n == nil {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("%w: no controller leader for %s op", ErrNoQuorum, cmd.Op)
			}
			time.Sleep(cp.electionTimeout / 10)
			continue
		}
		res, err := n.ProposeWait(data, proposeCallTimeout)
		if err == nil {
			return res, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: %s op did not commit: %v", ErrNoQuorum, cmd.Op, err)
		}
		// ErrNotLeader, ErrStopped, ErrProposalLost, ErrProposalTimeout: the
		// leadership moved or the entry's fate is unknown; re-resolve the
		// leader and re-propose the idempotent command.
		time.Sleep(time.Millisecond)
	}
}

// onLeader runs on a fresh goroutine each time controller replica idx wins
// an election: it is the process-pair takeover of the paper generalized to a
// replicated group. The new leader first commits a barrier so its state
// machine reflects every decision the old leader committed, reconciles the
// materialized routing state against the replicated state, aborts Algorithm 1
// copies orphaned by the crash, and drives in-transit 2PC outcomes to a safe
// conclusion (TakeOver).
func (cp *controlPlane) onLeader(idx int, term uint64) {
	n := cp.nodes[idx]
	if err := n.Barrier(cp.deadline); err != nil {
		return // lost leadership before the barrier committed
	}
	cp.mu.Lock()
	if !n.IsLeader() {
		cp.mu.Unlock()
		return
	}
	abortCopies := cp.adoptLocked(cp.states[idx])
	cp.mu.Unlock()
	// Copies the replicated state still records in flight died with the old
	// leader's copy goroutine; abort them so a fresh CreateReplica can run.
	for _, db := range abortCopies {
		_, _ = cp.propose(ctlCmd{Op: ctlOpCopyAbort, DB: db})
	}
	// Resolve in-transit 2PC outcomes only when the old primary actually
	// died (its commit path is halted by the crash hook). After a purely
	// electoral change — the bootstrap election, or a leader that lost its
	// lease to a transient partition but is still running — in-flight
	// commits are still being driven by their own goroutines and complete
	// on their own; a takeover would wrestle the sessions away mid-commit.
	if cp.c.pair.dead() {
		cp.c.TakeOver()
	}
	cp.mu.Lock()
	if term > cp.adoptedTerm {
		cp.adoptedTerm = term
	}
	cp.mu.Unlock()
	cp.c.metrics.reg.TraceEvent("consensus", cp.c.name, "leader_takeover",
		fmt.Sprintf("%s term %d", n.ID(), term))
}

// adoptLocked reconciles the controller's materialized routing state with
// the replicated state machine st (the new leader's, caught up past a
// barrier). Replica sets, read homes, and epochs are overwritten from the
// replicated record; leader-local soft state (write-sequence counters,
// drain counters, SLA reservations, partition layouts) is preserved
// in place. Local state the log never committed is discarded, and machines
// the log records as failed are failed locally. Returns the databases whose
// replicated record still shows a copy in flight (the caller aborts them).
// Caller holds cp.mu.
func (cp *controlPlane) adoptLocked(st *ctlState) (abortCopies []string) {
	view := st.view()
	c := cp.c
	var toFail []*Machine
	c.mu.Lock()
	for name, rec := range view.DBs {
		ds, ok := c.dbs[name]
		if !ok {
			ds = &dbState{name: name}
			c.dbs[name] = ds
		}
		if !ds.partitioned() {
			ds.replicas = append([]string(nil), rec.Replicas...)
			ds.readHome = rec.ReadHome
		}
		ds.epoch = rec.Epoch
		// Any copy running when the old leader died lost its driving
		// goroutine (or is racing takeover): force it to abandon at its next
		// step boundary rather than registering a half-copied replica.
		if cs := ds.copying; cs != nil {
			cs.aborted = true
		}
		if rec.Copy != nil {
			abortCopies = append(abortCopies, name)
		}
	}
	for name := range c.dbs {
		if _, ok := view.DBs[name]; !ok {
			delete(c.dbs, name)
		}
	}
	for id, m := range c.machines {
		if view.Failed[id] && !m.Failed() {
			toFail = append(toFail, m)
		}
	}
	c.mu.Unlock()
	for _, m := range toFail {
		m.fail()
	}
	sort.Strings(abortCopies)
	return abortCopies
}

// ControllerStatus describes one controller replica for health surfaces and
// tests.
type ControllerStatus struct {
	// ID is the replica's consensus node id (its netsim endpoint).
	ID string `json:"id"`
	// Leader reports whether this replica currently leads.
	Leader bool `json:"leader"`
	// Term is the replica's current election term.
	Term uint64 `json:"term"`
	// Stopped reports whether the replica is killed.
	Stopped bool `json:"stopped"`
	// Applied is the last log index applied to the replica's state machine.
	Applied uint64 `json:"applied"`
}

// ControllerStatus reports every controller replica's view, in group order.
// Nil without a replicated control plane.
func (c *Cluster) ControllerStatus() []ControllerStatus {
	cp := c.ctl
	if cp == nil {
		return nil
	}
	out := make([]ControllerStatus, 0, len(cp.nodes))
	for _, n := range cp.nodes {
		out = append(out, ControllerStatus{
			ID:      n.ID(),
			Leader:  n.IsLeader(),
			Term:    n.Term(),
			Stopped: n.Stopped(),
			Applied: n.Applied(),
		})
	}
	return out
}

// ControllerIDs lists the controller replica ids, in group order.
func (c *Cluster) ControllerIDs() []string {
	cp := c.ctl
	if cp == nil {
		return nil
	}
	out := make([]string, 0, len(cp.nodes))
	for _, n := range cp.nodes {
		out = append(out, n.ID())
	}
	return out
}

// LeaderController returns the id and term of the current controller
// leader, or ("", 0) when the control plane is leaderless (or not
// replicated).
func (c *Cluster) LeaderController() (string, uint64) {
	if c.ctl == nil {
		return "", 0
	}
	return c.ctl.group.LeaderID()
}

// KillLeaderController kills the current controller leader, modelling a
// controller process crash: its consensus node stops (RPCs refused, durable
// state retained for RestartController), the commit path of in-transit 2PC
// transactions halts exactly as the paper's primary failure does, and
// in-flight Algorithm 1 copies are orphaned. The surviving replicas elect a
// successor whose takeover (see onLeader) resolves both. Returns the killed
// replica's id.
func (c *Cluster) KillLeaderController() (string, error) {
	cp := c.ctl
	if cp == nil {
		return "", fmt.Errorf("core: cluster %s has no replicated control plane", c.name)
	}
	n := cp.group.Leader()
	if n == nil {
		return "", fmt.Errorf("%w: no controller leader to kill", ErrNoQuorum)
	}
	// The dying leader's commit path halts mid-flight: prepares and commit
	// decisions already issued stay in the pair mirror for the successor's
	// TakeOver, exactly as when the process-pair primary dies.
	c.SetCrashHook(func(CommitStage, uint64) bool { return true })
	// Its copy goroutines die with it; make them abandon at the next step.
	c.mu.Lock()
	for _, ds := range c.dbs {
		if cs := ds.copying; cs != nil {
			cs.aborted = true
		}
	}
	c.mu.Unlock()
	n.Stop()
	c.metrics.reg.TraceEvent("consensus", c.name, "leader_killed", n.ID())
	return n.ID(), nil
}

// StopController kills the named controller replica (leader or follower).
func (c *Cluster) StopController(id string) error {
	cp := c.ctl
	if cp == nil {
		return fmt.Errorf("core: cluster %s has no replicated control plane", c.name)
	}
	n := cp.group.Node(id)
	if n == nil {
		return fmt.Errorf("core: no controller replica %s", id)
	}
	if n.IsLeader() {
		_, err := c.KillLeaderController()
		return err
	}
	n.Stop()
	return nil
}

// RestartController revives a killed controller replica as a follower; it
// catches up from the leader's log (or a snapshot, when the log compacted
// past it).
func (c *Cluster) RestartController(id string) error {
	cp := c.ctl
	if cp == nil {
		return fmt.Errorf("core: cluster %s has no replicated control plane", c.name)
	}
	n := cp.group.Node(id)
	if n == nil {
		return fmt.Errorf("core: no controller replica %s", id)
	}
	n.Restart()
	return nil
}

// RestartControllers revives every killed controller replica and returns
// how many it restarted.
func (c *Cluster) RestartControllers() int {
	if c.ctl == nil {
		return 0
	}
	restarted := 0
	for _, n := range c.ctl.nodes {
		if n.Stopped() {
			n.Restart()
			restarted++
		}
	}
	return restarted
}

// ControllerFingerprints returns each live controller replica's state
// machine fingerprint, keyed by replica id. Converged replicas — same
// committed prefix applied — have identical fingerprints.
func (c *Cluster) ControllerFingerprints() map[string]string {
	cp := c.ctl
	if cp == nil {
		return nil
	}
	out := make(map[string]string)
	for i, n := range cp.nodes {
		if !n.Stopped() {
			out[n.ID()] = cp.states[i].Fingerprint()
		}
	}
	return out
}

// WaitControllerSettled blocks until the control plane has a leader whose
// failover processing (barrier, state adoption, orphaned-copy aborts, 2PC
// takeover) has fully completed, or the timeout elapses. Callers start
// long-running control operations — a replica copy, a recovery sweep —
// after this to avoid having them swept up as failover orphans. Trivially
// settled without a replicated control plane.
func (c *Cluster) WaitControllerSettled(timeout time.Duration) error {
	cp := c.ctl
	if cp == nil {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		if _, term := cp.group.LeaderID(); term > 0 {
			cp.mu.Lock()
			adopted := cp.adoptedTerm
			cp.mu.Unlock()
			if adopted >= term {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: controller failover did not settle in %s", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// WaitControllerConvergence blocks until every live controller replica has
// applied the full committed log and their state machines agree, or the
// timeout elapses. Chaos and tests call it before asserting control-plane
// invariants. A cluster without a replicated control plane converges
// trivially.
func (c *Cluster) WaitControllerConvergence(timeout time.Duration) error {
	cp := c.ctl
	if cp == nil {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		if err := cp.convergenceCheck(); err == nil {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("core: controller replicas did not converge in %s: %w", timeout, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// convergenceCheck performs one convergence probe: commit a barrier on the
// leader, then require every live replica applied up to it with matching
// fingerprints.
func (cp *controlPlane) convergenceCheck() error {
	leader := cp.group.Leader()
	if leader == nil {
		return fmt.Errorf("no leader")
	}
	if err := leader.Barrier(proposeCallTimeout); err != nil {
		return err
	}
	commit := leader.CommitIndex()
	want := ""
	for i, n := range cp.nodes {
		if n.Stopped() {
			continue
		}
		if n.Applied() < commit {
			return fmt.Errorf("replica %s applied %d < commit %d", n.ID(), n.Applied(), commit)
		}
		fp := cp.states[i].Fingerprint()
		if want == "" {
			want = fp
		} else if fp != want {
			return fmt.Errorf("replica %s fingerprint diverges", n.ID())
		}
	}
	return nil
}

// BeginAt starts a transaction through a specific controller replica,
// modelling clients that connect to any member of the replicated control
// plane: a replica that is not the leaseholding leader refuses with the
// retryable ErrNotLeader (carrying its leader hint), and the client retries
// against the hinted leader. Without a replicated control plane it is plain
// Begin.
func (c *Cluster) BeginAt(controllerID, db string) (*Txn, error) {
	cp := c.ctl
	if cp == nil {
		return c.Begin(db)
	}
	n := cp.group.Node(controllerID)
	if n == nil {
		return nil, fmt.Errorf("core: no controller replica %s", controllerID)
	}
	if n.Stopped() || !n.IsLeader() || !n.HasLease() {
		return nil, fmt.Errorf("%w (leader hint: %s)", ErrNotLeader, n.LeaderHint())
	}
	return c.Begin(db)
}
