package sqldb

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"testing"

	"sdp/internal/wal"
)

// newWALEngine builds an engine logging to a fresh in-memory store.
func newWALEngine(t *testing.T) (*Engine, *wal.MemStore) {
	t.Helper()
	s := wal.NewMemStore()
	e := NewEngine(DefaultConfig())
	e.AttachWAL(wal.New(s, wal.Config{}, nil))
	return e, s
}

// recoverEngine simulates the post-crash restart: a fresh engine over the
// same (crashed) store, recovered from its surviving log.
func recoverEngine(t *testing.T, s *wal.MemStore) (*Engine, *RecoveryStats) {
	t.Helper()
	e := NewEngine(DefaultConfig())
	e.AttachWAL(wal.New(s, wal.Config{}, nil))
	stats, err := e.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return e, stats
}

// rowIDs returns the sorted id column of tbl.
func rowIDs(t *testing.T, e *Engine, db, tbl string) []int64 {
	t.Helper()
	res, err := e.Exec(db, "SELECT id FROM "+tbl)
	if err != nil {
		t.Fatalf("select %s: %v", tbl, err)
	}
	out := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].Int)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func wantIDs(t *testing.T, e *Engine, db, tbl string, want ...int64) {
	t.Helper()
	got := rowIDs(t, e, db, tbl)
	if len(got) != len(want) {
		t.Fatalf("%s: ids = %v, want %v", tbl, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: ids = %v, want %v", tbl, got, want)
		}
	}
}

// mustExec runs one autocommit statement.
func crashExec(t *testing.T, e *Engine, db, sql string) {
	t.Helper()
	if _, err := e.Exec(db, sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// seedBank creates the standard crash-test fixture: bank.accounts with rows
// 1 and 2 committed.
func seedBank(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.CreateDatabase("bank"); err != nil {
		t.Fatal(err)
	}
	crashExec(t, e, "bank", "CREATE TABLE accounts (id INT PRIMARY KEY, bal INT)")
	crashExec(t, e, "bank", "INSERT INTO accounts (id, bal) VALUES (1, 100)")
	crashExec(t, e, "bank", "INSERT INTO accounts (id, bal) VALUES (2, 200)")
}

// TestCrashRecovery drives the same committed/uncommitted workload through
// every crash-injection point and proves the durability contract each time:
// every transaction whose Commit returned is present after recovery, every
// unfinished or rolled-back transaction is gone.
func TestCrashRecovery(t *testing.T) {
	type scenario struct {
		name string
		// inject fires the failure after the workload (committed rows 1-3,
		// uncommitted row 90, rolled-back row 91).
		inject func(t *testing.T, s *wal.MemStore)
		// wantTorn is whether recovery must report a truncated tail.
		wantTorn bool
		// wantRows overrides the expected surviving rows (default 1, 2, 3).
		wantRows []int64
	}
	scenarios := []scenario{
		{name: "clean_crash", inject: func(t *testing.T, s *wal.MemStore) { s.Crash(0) }},
		{name: "torn_3_bytes", inject: func(t *testing.T, s *wal.MemStore) { s.Crash(3) }, wantTorn: true},
		{name: "torn_1_byte", inject: func(t *testing.T, s *wal.MemStore) { s.Crash(1) }, wantTorn: true},
		{name: "duplicated_final_frame", inject: func(t *testing.T, s *wal.MemStore) { s.DuplicateLast(); s.Crash(0) }, wantTorn: true},
		// Chopping into the durable tail destroys the final frame — row 3's
		// commit record — so its transaction must roll back on recovery.
		{name: "chop_mid_record", inject: func(t *testing.T, s *wal.MemStore) { s.Crash(0); s.Chop(2) }, wantTorn: true, wantRows: []int64{1, 2}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			e, s := newWALEngine(t)
			seedBank(t, e)
			crashExec(t, e, "bank", "INSERT INTO accounts (id, bal) VALUES (3, 300)")

			// Uncommitted at crash time: must roll back.
			open, err := e.Begin("bank")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := open.Exec("INSERT INTO accounts (id, bal) VALUES (90, 0)"); err != nil {
				t.Fatal(err)
			}

			// Explicitly rolled back: must stay rolled back.
			rb, err := e.Begin("bank")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rb.Exec("INSERT INTO accounts (id, bal) VALUES (91, 0)"); err != nil {
				t.Fatal(err)
			}
			if err := rb.Rollback(); err != nil {
				t.Fatal(err)
			}

			sc.inject(t, s)
			e2, stats := recoverEngine(t, s)
			if stats.TornTail != sc.wantTorn {
				t.Fatalf("TornTail = %v, want %v", stats.TornTail, sc.wantTorn)
			}
			want := sc.wantRows
			if want == nil {
				want = []int64{1, 2, 3}
			}
			wantIDs(t, e2, "bank", "accounts", want...)

			// The recovered engine keeps serving: its log continues past the
			// repaired tail.
			crashExec(t, e2, "bank", "INSERT INTO accounts (id, bal) VALUES (4, 400)")
			e3, _ := recoverEngine(t, s)
			wantIDs(t, e3, "bank", "accounts", append(want, 4)...)
		})
	}
}

// TestCrashUncommittedTornStatements crashes with the tail of an uncommitted
// transaction's statements durable: without a commit record they must not
// replay.
func TestCrashUncommittedTornStatements(t *testing.T) {
	e, s := newWALEngine(t)
	seedBank(t, e)
	open, err := e.Begin("bank")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := open.Exec("INSERT INTO accounts (id, bal) VALUES (90, 0)"); err != nil {
		t.Fatal(err)
	}
	// Force the statement frames durable (as a concurrent committer's group
	// flush would), then crash before the transaction commits.
	if err := e.WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	s.Crash(0)
	e2, _ := recoverEngine(t, s)
	wantIDs(t, e2, "bank", "accounts", 1, 2)
}

// TestCrashDDLDurability covers CREATE/DROP TABLE, CREATE INDEX and database
// namespace changes across a crash.
func TestCrashDDLDurability(t *testing.T) {
	e, s := newWALEngine(t)
	seedBank(t, e)
	crashExec(t, e, "bank", "CREATE TABLE audit (id INT PRIMARY KEY, note TEXT)")
	crashExec(t, e, "bank", "CREATE INDEX idx_note ON audit (note)")
	crashExec(t, e, "bank", "INSERT INTO audit (id, note) VALUES (1, 'x')")
	crashExec(t, e, "bank", "CREATE TABLE doomed (id INT)")
	crashExec(t, e, "bank", "DROP TABLE doomed")
	if err := e.CreateDatabase("scratch"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropDatabase("scratch"); err != nil {
		t.Fatal(err)
	}
	// DDL records are buffered; a later committed write makes the whole
	// prefix durable.
	crashExec(t, e, "bank", "INSERT INTO accounts (id, bal) VALUES (3, 1)")
	s.Crash(0)

	e2, _ := recoverEngine(t, s)
	wantIDs(t, e2, "bank", "audit", 1)
	if e2.HasDatabase("scratch") {
		t.Fatal("dropped database resurrected")
	}
	if _, err := e2.Table("bank", "doomed"); err == nil {
		t.Fatal("dropped table resurrected")
	}
	// The replayed index is live: an indexed lookup works.
	res, err := e2.Exec("bank", "SELECT id FROM audit WHERE note = 'x'")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("index lookup after recovery: rows=%v err=%v", res, err)
	}
}

// TestCrashPreparedInDoubt proves a prepared transaction survives the crash
// in doubt and both resolutions behave: commit makes it visible and durable,
// abort erases it — in both cases durably, across a second crash.
func TestCrashPreparedInDoubt(t *testing.T) {
	for _, commit := range []bool{true, false} {
		name := "abort"
		if commit {
			name = "commit"
		}
		t.Run(name, func(t *testing.T) {
			e, s := newWALEngine(t)
			seedBank(t, e)
			tx, err := e.BeginWithID("bank", 77)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Exec("INSERT INTO accounts (id, bal) VALUES (5, 500)"); err != nil {
				t.Fatal(err)
			}
			if err := tx.Prepare(); err != nil {
				t.Fatal(err)
			}
			s.Crash(0)

			e2, stats := recoverEngine(t, s)
			if stats.InDoubt != 1 {
				t.Fatalf("InDoubt = %d, want 1", stats.InDoubt)
			}
			if got := e2.RecoveredPrepared(); len(got) != 1 || got[0] != 77 {
				t.Fatalf("RecoveredPrepared = %v, want [77]", got)
			}
			if tbls := stats.InDoubtTables["bank"]; len(tbls) != 1 || tbls[0] != "accounts" {
				t.Fatalf("InDoubtTables = %v", stats.InDoubtTables)
			}
			// The in-doubt transaction's writes stay locked until resolution.
			if err := e2.ResolvePrepared(77, commit); err != nil {
				t.Fatal(err)
			}
			want := []int64{1, 2}
			if commit {
				want = append(want, 5)
			}
			wantIDs(t, e2, "bank", "accounts", want...)

			// The resolution itself is durable: crash again, recover again.
			s.Crash(0)
			e3, stats3 := recoverEngine(t, s)
			if stats3.InDoubt != 0 {
				t.Fatalf("second recovery InDoubt = %d, want 0", stats3.InDoubt)
			}
			wantIDs(t, e3, "bank", "accounts", want...)
		})
	}
}

// TestCrashCheckpointBoundsReplay checks checkpoint-based recovery: state
// before the checkpoint is restored from images, only the tail replays, and
// a crash *during* checkpointing (no end frame) falls back to full replay.
func TestCrashCheckpointBoundsReplay(t *testing.T) {
	e, s := newWALEngine(t)
	seedBank(t, e)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crashExec(t, e, "bank", "INSERT INTO accounts (id, bal) VALUES (3, 300)")
	crashExec(t, e, "bank", "UPDATE accounts SET bal = 111 WHERE id = 1")
	s.Crash(0)

	e2, stats := recoverEngine(t, s)
	if stats.CheckpointLSN < 0 {
		t.Fatal("recovery did not use the checkpoint")
	}
	// Only the two post-checkpoint statements replay (images cover the rest).
	if stats.Applied != 2 {
		t.Fatalf("Applied = %d, want 2", stats.Applied)
	}
	wantIDs(t, e2, "bank", "accounts", 1, 2, 3)
	res, err := e2.Exec("bank", "SELECT bal FROM accounts WHERE id = 1")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int != 111 {
		t.Fatalf("post-checkpoint update lost: %v err=%v", res, err)
	}

	// Torpedo the next checkpoint midway: its end frame never lands, so
	// recovery must ignore it and still produce the same state.
	if err := e2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Chop(10) // destroys the end frame
	e3, stats3 := recoverEngine(t, s)
	wantIDs(t, e3, "bank", "accounts", 1, 2, 3)
	if stats3.CheckpointLSN >= stats.CheckpointLSN && stats3.CheckpointLSN > 0 {
		// The damaged checkpoint must not be the one used; the first (intact)
		// checkpoint is fine.
		if stats3.CheckpointLSN != stats.CheckpointLSN {
			t.Fatalf("recovery used damaged checkpoint at LSN %d", stats3.CheckpointLSN)
		}
	}
}

// TestCrashStoreFailureDuringCommit arms the byte-budget fault so the log
// device dies mid-commit: the commit must fail, the transaction must roll
// back, and recovery over the truncated log must show only prior commits.
func TestCrashStoreFailureDuringCommit(t *testing.T) {
	e, s := newWALEngine(t)
	seedBank(t, e)
	s.SetFailAfter(s.Size() + 10) // the next commit's frames die partway
	tx, err := e.Begin("bank")
	if err != nil {
		t.Fatal(err)
	}
	// The statement append may fail (budget hit) or succeed (fit under
	// budget); either way the commit must fail and roll the transaction back,
	// because its outcome record can never become durable.
	_, _ = tx.Exec("INSERT INTO accounts (id, bal) VALUES (6, 600)")
	if err := tx.Commit(); err == nil {
		t.Fatal("commit succeeded on a failing log device")
	}
	if tx.State() != TxnAborted {
		t.Fatalf("transaction state = %v, want aborted", tx.State())
	}
	// The failed transaction's effects are rolled back live, pre-recovery.
	wantIDs(t, e, "bank", "accounts", 1, 2)

	s.SetFailAfter(-1)
	s.Crash(0)
	e2, _ := recoverEngine(t, s)
	wantIDs(t, e2, "bank", "accounts", 1, 2)
}

// TestCrashCompactedLog runs the engine with log compaction enabled: each
// full checkpoint drops the dead log head, and recovery over the compacted
// log must still reproduce every committed transaction.
func TestCrashCompactedLog(t *testing.T) {
	s := wal.NewMemStore()
	e := NewEngine(DefaultConfig())
	e.AttachWAL(wal.New(s, wal.Config{Compact: true}, nil))
	seedBank(t, e)
	crashExec(t, e, "bank", "INSERT INTO accounts (id, bal) VALUES (3, 300)")

	before := s.Size()
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint compacted the log: the whole pre-checkpoint history
	// (database creation, DDL, three inserts) is gone, and the store now
	// starts at the checkpoint begin frame.
	data, err := s.Contents()
	if err != nil {
		t.Fatal(err)
	}
	recs, _, torn := wal.Scan(data)
	if torn || len(recs) == 0 || recs[0].Type != wal.RecCheckpointBegin {
		t.Fatalf("compacted log: torn=%v first=%v, want checkpoint begin at offset 0", torn, recs)
	}
	if s.Size() >= before {
		t.Fatalf("store did not shrink at checkpoint: %d -> %d", before, s.Size())
	}

	crashExec(t, e, "bank", "INSERT INTO accounts (id, bal) VALUES (4, 400)")
	s.Crash(0)
	e2, stats := recoverEngine(t, s)
	wantIDs(t, e2, "bank", "accounts", 1, 2, 3, 4)
	if stats.Applied != 1 {
		t.Fatalf("Applied = %d, want 1 (only the post-checkpoint insert)", stats.Applied)
	}

	// A second checkpoint compacts again (recoverEngine attaches Compact
	// off, so run it on a fresh compacting engine over the same store).
	e3 := NewEngine(DefaultConfig())
	e3.AttachWAL(wal.New(s, wal.Config{Compact: true}, nil))
	if _, err := e3.Recover(); err != nil {
		t.Fatal(err)
	}
	crashExec(t, e3, "bank", "INSERT INTO accounts (id, bal) VALUES (5, 500)")
	if err := e3.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Crash(0)
	e4, _ := recoverEngine(t, s)
	wantIDs(t, e4, "bank", "accounts", 1, 2, 3, 4, 5)
}

// TestCrashRandomizedCut is the property-based crash test behind `make
// crash`: a multi-transaction workload runs to completion, then the log is
// cut at a position chosen by SDP_CRASH_SEED (or a fixed seed) and recovery
// must reproduce exactly the transactions whose commit record survived the
// cut — committed-stays-committed, uncommitted-rolls-back, at every byte
// offset of the log.
func TestCrashRandomizedCut(t *testing.T) {
	seed := int64(1)
	if v := os.Getenv("SDP_CRASH_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad SDP_CRASH_SEED %q: %v", v, err)
		}
		seed = n
	}
	rng := rand.New(rand.NewSource(seed))

	// Build the reference log: 30 transactions inserting their GID as a row,
	// a sprinkle of aborts, and a mid-workload checkpoint.
	e, s := newWALEngine(t)
	seedBank(t, e)
	crashExec(t, e, "bank", "CREATE TABLE log (id INT PRIMARY KEY)")
	for gid := uint64(1); gid <= 30; gid++ {
		tx, err := e.BeginWithID("bank", gid)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(fmt.Sprintf("INSERT INTO log (id) VALUES (%d)", gid)); err != nil {
			t.Fatal(err)
		}
		switch {
		case gid%7 == 0:
			if err := tx.Rollback(); err != nil {
				t.Fatal(err)
			}
		default:
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if gid == 15 {
			if err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	full, err := s.Contents()
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 12; trial++ {
		cut := rng.Intn(len(full) + 1)
		t.Run(fmt.Sprintf("cut_%d", cut), func(t *testing.T) {
			// A store holding exactly the first cut bytes, as the crash left it.
			cs := wal.NewMemStore()
			if _, err := cs.Append(full[:cut]); err != nil {
				t.Fatal(err)
			}
			if err := cs.Sync(); err != nil {
				t.Fatal(err)
			}
			// Expected surviving transactions: commit records intact in the cut.
			recs, _, _ := wal.Scan(full[:cut])
			want := []int64{}
			for _, r := range recs {
				if r.Type == wal.RecCommit && r.GID != 0 {
					want = append(want, int64(r.GID))
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

			e2, _ := recoverEngine(t, cs)
			if !e2.HasDatabase("bank") {
				if len(want) != 0 {
					t.Fatalf("database lost but %d commits survived", len(want))
				}
				return
			}
			if _, err := e2.Table("bank", "log"); err != nil {
				if len(want) != 0 {
					t.Fatalf("log table lost but %d commits survived", len(want))
				}
				return
			}
			wantIDs(t, e2, "bank", "log", want...)
		})
	}
}
