package experiments

import (
	"fmt"
	"time"

	"sdp/internal/core"
	"sdp/internal/tpcw"
)

// DeadlockPoint is one measurement of Figures 5–7: database size vs
// deadlock rate (deadlocks per 1000 committed transactions).
type DeadlockPoint struct {
	SizeMB    float64
	Rate      float64
	Deadlocks uint64
	Committed uint64
}

// DeadlockResult holds the series of one of Figures 5–7.
type DeadlockResult struct {
	Mix    string
	Series map[string][]DeadlockPoint
	Order  []string
}

// RunDeadlocks reproduces one of Figures 5–7: the deadlock rate for
// different database sizes under each read option. The paper found no
// significant difference between the options; the reproduction measures the
// same quantity so the claim can be checked.
func RunDeadlocks(mix tpcw.Mix, cfg Config) DeadlockResult {
	sizes := []float64{50, 100, 200}
	sessions := 8
	if cfg.Quick {
		sizes = []float64{50, 100}
		sessions = 6
	}
	res := DeadlockResult{Mix: mix.Name, Series: make(map[string][]DeadlockPoint)}
	for _, opt := range []core.ReadOption{core.ReadOption1, core.ReadOption2, core.ReadOption3} {
		name := opt.String()
		res.Order = append(res.Order, name)
		for _, size := range sizes {
			res.Series[name] = append(res.Series[name], runDeadlockPoint(mix, opt, size, sessions, cfg))
		}
	}
	return res
}

func runDeadlockPoint(mix tpcw.Mix, opt core.ReadOption, sizeMB float64, sessions int, cfg Config) DeadlockPoint {
	engCfg := cfg.engineConfig()
	// Contention experiment: no artificial disk latency, so lock conflicts
	// dominate, and a short lock timeout so distributed deadlocks resolve.
	engCfg.MissLatency = 0
	engCfg.LockTimeout = 100 * time.Millisecond
	c := core.NewCluster("dl", core.Options{
		ReadOption:   opt,
		AckMode:      core.Conservative,
		Replicas:     2,
		EngineConfig: engCfg,
	})
	if _, err := c.AddMachines(2); err != nil {
		panic(err)
	}
	if err := c.CreateDatabase("app"); err != nil {
		panic(err)
	}
	db := clusterDB{c: c, db: "app"}
	scale := tpcw.ScaleForMB(sizeMB, cfg.Seed)
	if err := tpcw.Load(db, scale); err != nil {
		panic(err)
	}

	client := &tpcw.Client{DB: db, Mix: mix, Workload: tpcw.NewWorkload(scale), Classify: classify}
	before := c.Stats()
	st := client.RunConcurrent(sessions, cfg.measureDuration(), cfg.Seed)
	after := c.Stats()

	deadlocks := after.Deadlocks - before.Deadlocks
	pt := DeadlockPoint{SizeMB: sizeMB, Deadlocks: deadlocks, Committed: st.Committed}
	if st.Committed > 0 {
		pt.Rate = float64(deadlocks) / float64(st.Committed) * 1000
	}
	return pt
}

// Render formats the figure.
func (r DeadlockResult) Render(figure string) *Table {
	t := &Table{Title: fmt.Sprintf("%s: Deadlock Rate for Different Database Sizes (%s mix), deadlocks/1000 txns", figure, r.Mix)}
	t.Header = []string{"series"}
	if len(r.Order) > 0 {
		for _, pt := range r.Series[r.Order[0]] {
			t.Header = append(t.Header, fmt.Sprintf("%.0fMB", pt.SizeMB))
		}
	}
	for _, name := range r.Order {
		row := []string{name}
		for _, pt := range r.Series[name] {
			row = append(row, f2(pt.Rate))
		}
		t.AddRow(row...)
	}
	return t
}
