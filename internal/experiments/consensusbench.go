package experiments

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sdp/internal/core"
	"sdp/internal/netsim"
	"sdp/internal/obs"
	"sdp/internal/sqldb"
	"sdp/internal/tpcw"
)

// ConsensusBenchResult is the -bench-consensus output (BENCH_consensus.json):
// steady-state control-plane operation latency through the replicated log,
// and leader-failover behaviour under TPC-W load — how long after a leader
// kill the cluster commits its next control-plane operation and its next
// client transaction, without any manual intervention.
type ConsensusBenchResult struct {
	// Controllers is the consensus group size.
	Controllers int `json:"controllers"`
	// ElectionTimeoutMs is the configured base election timeout.
	ElectionTimeoutMs float64 `json:"election_timeout_ms"`

	// Steady-state latency of one control-plane operation (a database
	// create or drop: one consensus commit plus materialization).
	CtlOps     int     `json:"ctl_ops"`
	CtlOpP50Us float64 `json:"ctl_op_p50_us"`
	CtlOpP99Us float64 `json:"ctl_op_p99_us"`

	// Failovers are the individual leader-kill samples.
	Failovers []FailoverSample `json:"failovers"`
	// CtlCommitMeanMs / TxnCommitMeanMs average the samples.
	CtlCommitMeanMs float64 `json:"ctl_commit_mean_ms"`
	TxnCommitMeanMs float64 `json:"txn_commit_mean_ms"`

	// BaselineTPS is the TPC-W commit rate before any kill; FailoverTPS is
	// the rate over the kill/recover cycles (the availability cost of the
	// failovers themselves); RecoveredTPS is the rate after the last killed
	// replica rejoined — restored throughput, which should be back near the
	// baseline.
	BaselineTPS  float64 `json:"baseline_tps"`
	FailoverTPS  float64 `json:"failover_tps"`
	RecoveredTPS float64 `json:"recovered_tps"`
	// FailoverWindowS is the wall-clock length of the kill/recover window
	// the FailoverTPS rate was measured over.
	FailoverWindowS float64 `json:"failover_window_s"`
}

// FailoverSample times one leader kill under load.
type FailoverSample struct {
	// Killed is the killed leader's replica id.
	Killed string `json:"killed"`
	// CtlCommitMs is the time from the kill to the next committed
	// control-plane operation (proposed immediately after the kill, so it
	// rides through the election and the new leader's takeover).
	CtlCommitMs float64 `json:"ctl_commit_ms"`
	// TxnCommitMs is the time from the kill to the next committed client
	// write transaction (blocked until a new leader holds the quorum lease
	// and has resolved the in-transit commits the dead leader halted).
	TxnCommitMs float64 `json:"txn_commit_ms"`
}

// RunConsensusBench measures the replicated control plane. See
// ConsensusBenchResult for what each number means.
func RunConsensusBench(cfg Config) (*ConsensusBenchResult, error) {
	reg := obs.NewRegistry()
	net := netsim.New(cfg.Seed, reg)
	et := 50 * time.Millisecond
	engineCfg := sqldb.DefaultConfig()
	engineCfg.LockTimeout = 250 * time.Millisecond
	c := core.NewCluster("bench", core.Options{
		ReadOption:                core.ReadOption1,
		AckMode:                   core.Conservative,
		Replicas:                  2,
		EngineConfig:              engineCfg,
		Metrics:                   reg,
		Network:                   net,
		CallTimeout:               200 * time.Millisecond,
		RetryLimit:                6,
		RetryBackoff:              500 * time.Microsecond,
		Controllers:               3,
		ControllerSeed:            cfg.Seed,
		ControllerElectionTimeout: et,
	})
	if _, err := c.AddMachines(3); err != nil {
		return nil, err
	}
	if err := c.CreateDatabase("app"); err != nil {
		return nil, err
	}
	db := clusterDB{c: c, db: "app"}
	scale := tpcw.SmallScale(cfg.Seed)
	if err := tpcw.Load(db, scale); err != nil {
		return nil, err
	}
	res := &ConsensusBenchResult{
		Controllers:       3,
		ElectionTimeoutMs: float64(et) / float64(time.Millisecond),
	}

	// Steady state: each create or drop is one control-plane operation —
	// a consensus commit (propose, replicate, apply) plus materialization.
	iters := 100
	if cfg.Quick {
		iters = 25
	}
	samples := make([]time.Duration, 0, 2*iters)
	for i := 0; i < iters; i++ {
		name := fmt.Sprintf("bench_ctl_%d", i)
		t0 := time.Now()
		if err := c.CreateDatabase(name); err != nil {
			return nil, err
		}
		samples = append(samples, time.Since(t0))
		t0 = time.Now()
		if err := c.DropDatabase(name); err != nil {
			return nil, err
		}
		samples = append(samples, time.Since(t0))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	res.CtlOps = len(samples)
	res.CtlOpP50Us = float64(samples[len(samples)/2]) / float64(time.Microsecond)
	res.CtlOpP99Us = float64(samples[len(samples)*99/100]) / float64(time.Microsecond)

	// Failover: TPC-W sessions run throughout; each cycle kills the
	// leader, times the next committed control op and client transaction,
	// then restarts the dead replica and lets the group settle.
	clients := 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		client := &tpcw.Client{
			DB:       db,
			Mix:      tpcw.OrderingMix,
			Workload: tpcw.NewWorkload(scale),
			Classify: chaosClassify,
		}
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client.RunSession(seed, stop)
		}(cfg.Seed + int64(i))
	}
	defer func() {
		if stop != nil {
			close(stop)
			wg.Wait()
		}
	}()
	committed := reg.Counter("core_txn_committed_total", "")

	warm := 500 * time.Millisecond
	if cfg.Quick {
		warm = 200 * time.Millisecond
	}
	time.Sleep(warm)
	base0 := committed.Value()
	time.Sleep(warm)
	res.BaselineTPS = float64(committed.Value()-base0) / warm.Seconds()

	kills := 5
	if cfg.Quick {
		kills = 3
	}
	if _, err := c.Exec("app", "CREATE TABLE bench_probe (id INT PRIMARY KEY, v INT)"); err != nil {
		return nil, err
	}
	if _, err := c.Exec("app", "INSERT INTO bench_probe VALUES (1, 0)"); err != nil {
		return nil, err
	}
	failStart := committed.Value()
	t0 := time.Now()
	for k := 0; k < kills; k++ {
		killed, err := c.KillLeaderController()
		if err != nil {
			return nil, err
		}
		kill := time.Now()
		// First committed control-plane op: proposed right away, so the
		// call rides through the election and the successor's takeover.
		if err := c.CreateDatabase(fmt.Sprintf("bench_failover_%d", k)); err != nil {
			return nil, fmt.Errorf("control plane never recovered from kill %d: %w", k, err)
		}
		ctlMs := float64(time.Since(kill)) / float64(time.Millisecond)
		// First committed client write transaction.
		deadline := time.Now().Add(10 * time.Second)
		for {
			_, err := c.Exec("app", "UPDATE bench_probe SET v = v + 1 WHERE id = 1")
			if err == nil {
				break
			}
			if !core.IsRetryable(err) && !errors.Is(err, core.ErrRejected) {
				return nil, fmt.Errorf("probe transaction failed fatally after kill %d: %w", k, err)
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("data path never recovered from kill %d: %w", k, err)
			}
		}
		txnMs := float64(time.Since(kill)) / float64(time.Millisecond)
		res.Failovers = append(res.Failovers, FailoverSample{
			Killed: killed, CtlCommitMs: ctlMs, TxnCommitMs: txnMs,
		})
		res.CtlCommitMeanMs += ctlMs / float64(kills)
		res.TxnCommitMeanMs += txnMs / float64(kills)
		if err := c.RestartController(killed); err != nil {
			return nil, err
		}
		if err := c.WaitControllerSettled(5 * time.Second); err != nil {
			return nil, err
		}
		if err := c.WaitControllerConvergence(5 * time.Second); err != nil {
			return nil, err
		}
	}
	res.FailoverWindowS = time.Since(t0).Seconds()
	res.FailoverTPS = float64(committed.Value()-failStart) / res.FailoverWindowS

	rec0 := committed.Value()
	time.Sleep(warm)
	res.RecoveredTPS = float64(committed.Value()-rec0) / warm.Seconds()

	close(stop)
	wg.Wait()
	stop = nil
	return res, nil
}
