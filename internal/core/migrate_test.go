package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sdp/internal/sla"
)

func TestMigrateReplicaBasic(t *testing.T) {
	c := newTestCluster(t, 3, Options{Replicas: 2})
	populate(t, c, 100)

	reps, _ := c.Replicas("app")
	var free string
	for _, id := range c.MachineIDs() {
		if !contains(reps, id) {
			free = id
		}
	}
	from := reps[0]
	if err := c.MigrateReplica("app", from, free); err != nil {
		t.Fatal(err)
	}
	newReps, _ := c.Replicas("app")
	if len(newReps) != 2 || contains(newReps, from) || !contains(newReps, free) {
		t.Fatalf("replicas after migration = %v", newReps)
	}
	// The source machine no longer has the database.
	m, _ := c.Machine(from)
	if m.Engine().HasDatabase("app") {
		t.Error("source still has the database")
	}
	// The database still serves reads and writes.
	res := clusterExec(t, c, "SELECT COUNT(*) FROM a")
	if res.Rows[0][0].Int != 100 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	clusterExec(t, c, "UPDATE a SET v = v + 1 WHERE id = 1")
}

func TestMigrateReplicaErrors(t *testing.T) {
	c := newTestCluster(t, 3, Options{Replicas: 2})
	populate(t, c, 10)
	reps, _ := c.Replicas("app")
	if err := c.MigrateReplica("missing", reps[0], "m3"); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("err = %v", err)
	}
	var free string
	for _, id := range c.MachineIDs() {
		if !contains(reps, id) {
			free = id
		}
	}
	if err := c.MigrateReplica("app", free, reps[0]); err == nil {
		t.Error("migrating from a non-hosting machine succeeded")
	}
	if err := c.MigrateReplica("app", reps[0], reps[1]); err == nil {
		t.Error("migrating onto an existing replica succeeded")
	}
}

func TestMigrateUnderLoadKeepsConsistency(t *testing.T) {
	c := newTestCluster(t, 3, Options{Replicas: 2})
	clusterExec(t, c, "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
	for i := 0; i < 200; i++ {
		clusterExec(t, c, fmt.Sprintf("INSERT INTO kv VALUES (%d, 0)", i))
	}

	stop := make(chan struct{})
	var committed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				_, err := c.Exec("app", fmt.Sprintf("UPDATE kv SET v = v + 1 WHERE k = %d", i%200))
				if err == nil {
					committed.Add(1)
				}
			}
		}(w * 100)
	}

	reps, _ := c.Replicas("app")
	var free string
	for _, id := range c.MachineIDs() {
		if !contains(reps, id) {
			free = id
		}
	}
	if err := c.MigrateReplica("app", reps[0], free); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// All replicas agree and reflect exactly the committed updates.
	newReps, _ := c.Replicas("app")
	var sums []int64
	for _, id := range newReps {
		m, _ := c.Machine(id)
		res, err := m.Engine().Exec("app", "SELECT SUM(v) FROM kv")
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, res.Rows[0][0].Int)
	}
	for i := 1; i < len(sums); i++ {
		if sums[i] != sums[0] {
			t.Fatalf("replicas diverged after migration: %v", sums)
		}
	}
	if sums[0] != committed.Load() {
		t.Errorf("sum = %d, committed = %d", sums[0], committed.Load())
	}
}

func TestMigrateRespectsSLACapacity(t *testing.T) {
	c := NewCluster("mig", Options{Replicas: 2})
	if _, err := c.AddMachines(4); err != nil {
		t.Fatal(err)
	}
	big := sla.Resources{CPU: 0.8, Memory: 0.8, Disk: 0.2, DiskBW: 0.2}
	if _, err := c.PlaceWithSLA("app", big, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceWithSLA("other", big, 2); err != nil {
		t.Fatal(err)
	}
	reps, _ := c.Replicas("app")
	others, _ := c.Replicas("other")
	// Migrating app onto a machine already running other must fail the
	// capacity check (0.8 + 0.8 > 1).
	err := c.MigrateReplica("app", reps[0], others[0])
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	// The failed attempt must not leak a reservation.
	m, _ := c.Machine(others[0])
	if used := m.Used(); used.CPU > 0.81 {
		t.Errorf("leaked reservation: %v", used)
	}
}

// TestWriteRouteAlgorithm1 unit-tests the controller's routing decisions
// against Algorithm 1's four cases directly.
func TestWriteRouteAlgorithm1(t *testing.T) {
	c := newTestCluster(t, 3, Options{Replicas: 2})
	clusterExec(t, c, "CREATE TABLE a (id INT PRIMARY KEY)")
	clusterExec(t, c, "CREATE TABLE b (id INT PRIMARY KEY)")
	clusterExec(t, c, "CREATE TABLE c (id INT PRIMARY KEY)")

	reps, _ := c.Replicas("app")
	// Install a synthetic copy state: table a copied, table b in flight.
	c.mu.Lock()
	ds := c.dbs["app"]
	ds.copying = &copyState{
		target:   "m3",
		copied:   map[string]bool{"a": true},
		inFlight: "b",
	}
	c.mu.Unlock()

	// Case: write to a copied table goes to replicas + target.
	targets, release, err := c.writeRoute("app", "A") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	release()
	if len(targets) != 3 || !contains(targets, "m3") {
		t.Errorf("copied-table targets = %v", targets)
	}

	// Case: write to the in-flight table is rejected.
	if _, _, err := c.writeRoute("app", "b"); !errors.Is(err, ErrRejected) {
		t.Errorf("in-flight write err = %v", err)
	}

	// Case: write to a not-yet-copied table excludes the target.
	targets, release, err = c.writeRoute("app", "c")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if len(targets) != 2 || contains(targets, "m3") {
		t.Errorf("uncopied-table targets = %v (replicas %v)", targets, reps)
	}

	// Case: database-granularity copy rejects everything.
	c.mu.Lock()
	ds.copying.wholeDB = true
	c.mu.Unlock()
	if _, _, err := c.writeRoute("app", "a"); !errors.Is(err, ErrRejected) {
		t.Errorf("wholeDB write err = %v", err)
	}
	if got := c.Stats().Rejected; got < 2 {
		t.Errorf("rejected counter = %d", got)
	}

	// Reads never route to the copy target.
	c.mu.Lock()
	ds.copying = nil
	c.mu.Unlock()
}

// TestReadRoutingPolicies checks the three options' replica-choice
// behaviour directly.
func TestReadRoutingPolicies(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2, ReadOption: ReadOption1})
	// Option 1: the same machine for every transaction.
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		tx, _ := c.Begin("app")
		id, err := c.pickReadMachine(tx, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[id] = true
		_ = tx.Rollback()
	}
	if len(seen) != 1 {
		t.Errorf("option1 used %d machines", len(seen))
	}

	// Option 2: stable within a transaction, varies across transactions.
	c2 := newTestCluster(t, 2, Options{Replicas: 2, ReadOption: ReadOption2})
	seen = map[string]bool{}
	for i := 0; i < 8; i++ {
		tx, _ := c2.Begin("app")
		first, _ := c2.pickReadMachine(tx, nil)
		second, _ := c2.pickReadMachine(tx, nil)
		if first != second {
			t.Errorf("option2 changed machine within a transaction: %s -> %s", first, second)
		}
		seen[first] = true
		_ = tx.Rollback()
	}
	if len(seen) != 2 {
		t.Errorf("option2 used %d machines across transactions, want 2", len(seen))
	}

	// Option 3: varies within a transaction.
	c3 := newTestCluster(t, 2, Options{Replicas: 2, ReadOption: ReadOption3})
	tx, _ := c3.Begin("app")
	seen = map[string]bool{}
	for i := 0; i < 8; i++ {
		id, _ := c3.pickReadMachine(tx, nil)
		seen[id] = true
	}
	_ = tx.Rollback()
	if len(seen) != 2 {
		t.Errorf("option3 used %d machines within a transaction, want 2", len(seen))
	}
}
