package sqldb

import (
	"fmt"
	"strings"
)

// RenderStmt renders a parsed write statement back to SQL text with any ?
// placeholders replaced by the bound parameter values as literals. The WAL
// logs statements in this form, so replay needs no parameter transport and
// the log is human-readable. Statements round-trip through Parse: the
// renderer emits only syntax the parser accepts.
func RenderStmt(stmt Statement, params []Value) (string, error) {
	r := &sqlRenderer{params: params}
	switch s := stmt.(type) {
	case *InsertStmt:
		r.renderInsert(s)
	case *UpdateStmt:
		r.renderUpdate(s)
	case *DeleteStmt:
		r.renderDelete(s)
	case *CreateTableStmt:
		r.renderCreateTable(s)
	case *CreateIndexStmt:
		r.renderCreateIndex(s)
	case *DropTableStmt:
		r.renderDropTable(s)
	default:
		return "", fmt.Errorf("sqldb: cannot render %T", stmt)
	}
	if r.err != nil {
		return "", r.err
	}
	return r.sb.String(), nil
}

// sqlRenderer accumulates rendered SQL; the first error wins and later
// writes are ignored.
type sqlRenderer struct {
	sb     strings.Builder
	params []Value
	err    error
}

func (r *sqlRenderer) str(s string) {
	if r.err == nil {
		r.sb.WriteString(s)
	}
}

func (r *sqlRenderer) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *sqlRenderer) renderInsert(s *InsertStmt) {
	r.str("INSERT INTO ")
	r.str(s.Table)
	if len(s.Cols) > 0 {
		r.str(" (")
		r.str(strings.Join(s.Cols, ", "))
		r.str(")")
	}
	r.str(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			r.str(", ")
		}
		r.str("(")
		for j, ex := range row {
			if j > 0 {
				r.str(", ")
			}
			r.expr(ex)
		}
		r.str(")")
	}
}

func (r *sqlRenderer) renderUpdate(s *UpdateStmt) {
	r.str("UPDATE ")
	r.str(s.Table)
	r.str(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			r.str(", ")
		}
		r.str(a.Col)
		r.str(" = ")
		r.expr(a.Expr)
	}
	r.where(s.Where)
}

func (r *sqlRenderer) renderDelete(s *DeleteStmt) {
	r.str("DELETE FROM ")
	r.str(s.Table)
	r.where(s.Where)
}

func (r *sqlRenderer) renderCreateTable(s *CreateTableStmt) {
	r.str("CREATE TABLE ")
	if s.IfNotExists {
		r.str("IF NOT EXISTS ")
	}
	r.str(s.Table)
	r.str(" (")
	for i, c := range s.Cols {
		if i > 0 {
			r.str(", ")
		}
		r.str(c.Name)
		r.str(" ")
		r.str(c.Typ.String())
		if c.PrimaryKey {
			r.str(" PRIMARY KEY")
		}
		if c.NotNull {
			r.str(" NOT NULL")
		}
		if c.Unique {
			r.str(" UNIQUE")
		}
	}
	r.str(")")
}

func (r *sqlRenderer) renderCreateIndex(s *CreateIndexStmt) {
	r.str("CREATE ")
	if s.Unique {
		r.str("UNIQUE ")
	}
	r.str("INDEX ")
	r.str(s.Name)
	r.str(" ON ")
	r.str(s.Table)
	r.str(" (")
	r.str(s.Col)
	r.str(")")
}

func (r *sqlRenderer) renderDropTable(s *DropTableStmt) {
	r.str("DROP TABLE ")
	if s.IfExists {
		r.str("IF EXISTS ")
	}
	r.str(s.Table)
}

func (r *sqlRenderer) where(e Expr) {
	if e == nil {
		return
	}
	r.str(" WHERE ")
	r.expr(e)
}

// expr renders one expression. Binary sub-expressions are parenthesised
// unconditionally, so the output never depends on precedence.
func (r *sqlRenderer) expr(e Expr) {
	switch ex := e.(type) {
	case *LiteralExpr:
		r.str(ex.Val.String())
	case *ParamExpr:
		if ex.Index < 0 || ex.Index >= len(r.params) {
			r.fail("sqldb: render: parameter %d out of range (%d bound)", ex.Index, len(r.params))
			return
		}
		r.str(r.params[ex.Index].String())
	case *ColumnExpr:
		if ex.Table != "" {
			r.str(ex.Table)
			r.str(".")
		}
		r.str(ex.Col)
	case *BinaryExpr:
		r.str("(")
		r.expr(ex.L)
		r.str(" ")
		r.str(ex.Op.String())
		r.str(" ")
		r.expr(ex.R)
		r.str(")")
	case *UnaryExpr:
		if ex.Op == OpNot {
			r.str("(NOT ")
		} else {
			r.str("(-")
		}
		r.expr(ex.E)
		r.str(")")
	case *InExpr:
		r.str("(")
		r.expr(ex.E)
		if ex.Negate {
			r.str(" NOT")
		}
		r.str(" IN (")
		for i, item := range ex.List {
			if i > 0 {
				r.str(", ")
			}
			r.expr(item)
		}
		r.str("))")
	case *BetweenExpr:
		r.str("(")
		r.expr(ex.E)
		if ex.Negate {
			r.str(" NOT")
		}
		r.str(" BETWEEN ")
		r.expr(ex.Lo)
		r.str(" AND ")
		r.expr(ex.Hi)
		r.str(")")
	case *LikeExpr:
		r.str("(")
		r.expr(ex.E)
		if ex.Negate {
			r.str(" NOT")
		}
		r.str(" LIKE ")
		r.expr(ex.Pattern)
		r.str(")")
	case *IsNullExpr:
		r.str("(")
		r.expr(ex.E)
		r.str(" IS")
		if ex.Negate {
			r.str(" NOT")
		}
		r.str(" NULL)")
	default:
		r.fail("sqldb: render: unsupported expression %T", e)
	}
}
