package sqldb

import (
	"sync"
	"time"
)

// LockMode is a multi-granularity lock mode.
type LockMode int

// Lock modes, weakest to strongest. IS/IX are intention modes taken on a
// table before locking individual rows; S/X are taken on rows, and on whole
// tables by scans, DDL, and the dump tool.
const (
	LockIS LockMode = iota
	LockIX
	LockS
	LockX
)

// String returns the conventional name of the mode.
func (m LockMode) String() string {
	switch m {
	case LockIS:
		return "IS"
	case LockIX:
		return "IX"
	case LockS:
		return "S"
	case LockX:
		return "X"
	default:
		return "?"
	}
}

// shared reports whether the mode is a read-side mode (released early when
// the 2PC prepare optimisation is enabled).
func (m LockMode) shared() bool { return m == LockIS || m == LockS }

// lockCompat[held][requested] reports whether the two modes are compatible.
var lockCompat = [4][4]bool{
	LockIS: {LockIS: true, LockIX: true, LockS: true, LockX: false},
	LockIX: {LockIS: true, LockIX: true, LockS: false, LockX: false},
	LockS:  {LockIS: true, LockIX: false, LockS: true, LockX: false},
	LockX:  {LockIS: false, LockIX: false, LockS: false, LockX: false},
}

// lockID names a lockable resource: a whole table, or one row of it
// identified by its canonical primary-key string. Keying row locks by the
// logical key (rather than a physical row ID) makes lock identity stable
// across replicas and across delete/re-insert of the same key.
type lockID struct {
	Table string // qualified "db/table" name
	Key   string // canonical row key; "" for a table-level lock
}

// lockRequest is a queued lock acquisition.
type lockRequest struct {
	txn  *Txn
	mode LockMode
	// granted requests are in entry.granted; waiting ones in entry.queue.
	ready chan error // closed with nil on grant; receives error on abort
}

// lockEntry is the state of one lockable resource.
type lockEntry struct {
	granted map[*Txn]LockMode
	queue   []*lockRequest
}

// lockManager implements strict two-phase locking with multi-granularity
// modes, FIFO wait queues, and wait-for-graph deadlock detection. The victim
// policy aborts the requester whose wait would close a cycle, which matches
// the immediate-detection behaviour the paper's TPC-W runs observed in MySQL
// (InnoDB also aborts the requesting transaction).
type lockManager struct {
	mu      sync.Mutex
	locks   map[lockID]*lockEntry
	waitFor map[*Txn]map[*Txn]bool // edges: waiter -> holders blocking it
	timeout time.Duration

	// free recycles lockEntry values (and their granted maps) so the hot
	// path of short transactions — a handful of uncontended locks acquired
	// and released per statement — does not allocate. Guarded by mu.
	free []*lockEntry

	deadlocks uint64 // guarded by mu
}

// lockEntryFreeMax bounds the entry freelist.
const lockEntryFreeMax = 1024

func newLockManager(timeout time.Duration) *lockManager {
	return &lockManager{
		locks:   make(map[lockID]*lockEntry),
		waitFor: make(map[*Txn]map[*Txn]bool),
		timeout: timeout,
	}
}

// acquire obtains id in mode for txn, blocking until granted, deadlock,
// timeout, or transaction abort. Re-acquisitions and upgrades (e.g. S→X,
// IS→IX) are handled.
func (lm *lockManager) acquire(txn *Txn, id lockID, mode LockMode) error {
	lm.mu.Lock()

	e := lm.locks[id]
	if e == nil {
		if n := len(lm.free); n > 0 {
			e = lm.free[n-1]
			lm.free = lm.free[:n-1]
		} else {
			e = &lockEntry{granted: make(map[*Txn]LockMode, 2)}
		}
		lm.locks[id] = e
	}

	if held, ok := e.granted[txn]; ok {
		target := upgradeMode(held, mode)
		if target == held {
			lm.mu.Unlock()
			return nil
		}
		// Upgrade: compatible with every *other* holder? The id is already
		// in the transaction's held list from the original grant.
		if lm.compatibleWithHolders(e, txn, target) {
			e.granted[txn] = target
			lm.mu.Unlock()
			return nil
		}
		// Conflicting upgrade: wait at the front of the queue (upgrades get
		// priority so two upgraders deadlock promptly rather than starve).
		req := &lockRequest{txn: txn, mode: target, ready: make(chan error, 1)}
		e.queue = append([]*lockRequest{req}, e.queue...)
		return lm.block(txn, id, e, req)
	}

	if len(e.queue) == 0 && lm.compatibleWithHolders(e, txn, mode) {
		e.granted[txn] = mode
		txn.noteLock(id)
		lm.mu.Unlock()
		return nil
	}
	req := &lockRequest{txn: txn, mode: mode, ready: make(chan error, 1)}
	e.queue = append(e.queue, req)
	return lm.block(txn, id, e, req)
}

// block parks txn on req after installing wait-for edges and checking for a
// deadlock cycle. Called with lm.mu held; always releases it.
func (lm *lockManager) block(txn *Txn, id lockID, e *lockEntry, req *lockRequest) error {
	lm.refreshEdges(txn, e)
	if lm.cycleFrom(txn) {
		lm.deadlocks++
		lm.removeRequest(e, req)
		lm.clearEdges(txn)
		lm.mu.Unlock()
		return ErrDeadlock
	}
	lm.mu.Unlock()

	var timeoutC <-chan time.Time
	if lm.timeout > 0 {
		t := time.NewTimer(lm.timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case err := <-req.ready:
		return err
	case <-timeoutC:
		lm.mu.Lock()
		// The grant may have raced the timeout.
		select {
		case err := <-req.ready:
			lm.mu.Unlock()
			return err
		default:
		}
		lm.removeRequest(e, req)
		lm.clearEdges(txn)
		lm.grantWaiters(id, e)
		lm.mu.Unlock()
		return ErrLockTimeout
	}
}

// releaseAll drops every lock txn holds and cancels its pending waits.
func (lm *lockManager) releaseAll(txn *Txn) {
	lm.release(txn, func(LockMode) bool { return true })
}

// releaseShared drops only the read-side (S/IS) locks of txn. This is the
// 2PC optimisation — releasing read locks at PREPARE — that the paper
// identifies as the cause of non-serializable executions under read-routing
// Options 2 and 3 with an aggressive controller.
func (lm *lockManager) releaseShared(txn *Txn) {
	lm.release(txn, LockMode.shared)
}

func (lm *lockManager) release(txn *Txn, drop func(LockMode) bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.clearEdges(txn)
	held := txn.heldLocks()
	kept := held[:0]
	for _, id := range held {
		e := lm.locks[id]
		if e == nil {
			continue
		}
		if mode, ok := e.granted[txn]; ok {
			if drop(mode) {
				delete(e.granted, txn)
			} else {
				kept = append(kept, id)
			}
		}
		// Cancel any waits by this transaction (abort path).
		if drop(LockX) {
			for _, req := range e.queue {
				if req.txn == txn {
					lm.removeRequest(e, req)
					req.ready <- ErrTxnAborted
					break
				}
			}
		}
		lm.grantWaiters(id, e)
		if len(e.granted) == 0 && len(e.queue) == 0 {
			delete(lm.locks, id)
			if len(lm.free) < lockEntryFreeMax {
				e.queue = nil
				lm.free = append(lm.free, e)
			}
		}
	}
	txn.locks = kept
}

// grantWaiters admits queued requests in FIFO order while they are
// compatible. Called with lm.mu held.
func (lm *lockManager) grantWaiters(id lockID, e *lockEntry) {
	for len(e.queue) > 0 {
		req := e.queue[0]
		if !lm.compatibleWithHolders(e, req.txn, req.mode) {
			break
		}
		e.queue = e.queue[1:]
		if held, ok := e.granted[req.txn]; ok {
			e.granted[req.txn] = upgradeMode(held, req.mode)
		} else {
			e.granted[req.txn] = req.mode
			req.txn.noteLock(id)
		}
		lm.clearEdges(req.txn)
		req.ready <- nil
	}
	// Re-point wait-for edges of the remaining waiters at current holders.
	for _, req := range e.queue {
		lm.refreshEdges(req.txn, e)
	}
}

// compatibleWithHolders reports whether txn may hold mode on e alongside all
// *other* current holders. Called with lm.mu held.
func (lm *lockManager) compatibleWithHolders(e *lockEntry, txn *Txn, mode LockMode) bool {
	for holder, held := range e.granted {
		if holder == txn {
			continue
		}
		if !lockCompat[held][mode] {
			return false
		}
	}
	return true
}

// refreshEdges sets txn's wait-for edges to the holders of e that block it.
// Called with lm.mu held.
func (lm *lockManager) refreshEdges(txn *Txn, e *lockEntry) {
	// Find txn's queued request to know the mode it wants.
	var want LockMode
	found := false
	for _, req := range e.queue {
		if req.txn == txn {
			want = req.mode
			found = true
			break
		}
	}
	if !found {
		return
	}
	edges := make(map[*Txn]bool)
	for holder, held := range e.granted {
		if holder != txn && !lockCompat[held][want] {
			edges[holder] = true
		}
	}
	// Also wait for earlier incompatible waiters (FIFO fairness).
	for _, req := range e.queue {
		if req.txn == txn {
			break
		}
		if !lockCompat[req.mode][want] || !lockCompat[want][req.mode] {
			edges[req.txn] = true
		}
	}
	lm.waitFor[txn] = edges
}

// clearEdges removes txn's outgoing wait-for edges. Called with lm.mu held.
func (lm *lockManager) clearEdges(txn *Txn) { delete(lm.waitFor, txn) }

// cycleFrom reports whether start can reach itself in the wait-for graph.
// Called with lm.mu held.
func (lm *lockManager) cycleFrom(start *Txn) bool {
	seen := make(map[*Txn]bool)
	var dfs func(t *Txn) bool
	dfs = func(t *Txn) bool {
		for next := range lm.waitFor[t] {
			if next == start {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// removeRequest deletes req from e's queue. Called with lm.mu held.
func (lm *lockManager) removeRequest(e *lockEntry, req *lockRequest) {
	for i, r := range e.queue {
		if r == req {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// deadlockCount returns the number of deadlocks detected so far.
func (lm *lockManager) deadlockCount() uint64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.deadlocks
}

// heldCount returns the number of (transaction, resource) lock holds
// currently granted. A quiescent engine must report zero — the invariant
// the 2PC timeout tests assert to prove no coordinator failure path leaks
// locks.
func (lm *lockManager) heldCount() uint64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	var n uint64
	for _, e := range lm.locks {
		n += uint64(len(e.granted))
	}
	return n
}

// upgradeMode returns the weakest mode at least as strong as both a and b.
func upgradeMode(a, b LockMode) LockMode {
	if a == b {
		return a
	}
	// X dominates everything.
	if a == LockX || b == LockX {
		return LockX
	}
	// S+IX (and IX+S) needs SIX; we approximate with X, which is strictly
	// stronger and therefore safe (may cost some concurrency, never
	// correctness).
	if (a == LockS && b == LockIX) || (a == LockIX && b == LockS) {
		return LockX
	}
	if a == LockS || b == LockS {
		return LockS
	}
	if a == LockIX || b == LockIX {
		return LockIX
	}
	return LockIS
}
