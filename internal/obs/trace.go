package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultTraceCapacity is the ring size of a registry's tracer: large
// enough to hold the full 2PC and copy-phase history of an experiment run,
// small enough to be dumped whole.
const DefaultTraceCapacity = 4096

// Event is one structured span event. Events carry a correlation ID —
// "gid:<n>" for the branches and phases of one distributed transaction,
// or a database name for replica-copy and DR-replication spans — so an
// operator can reassemble the timeline of one transaction or one copy from
// the interleaved ring.
type Event struct {
	// Seq is a tracer-wide monotonically increasing sequence number; it
	// orders events exactly even when timestamps collide.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock instant the event was recorded.
	Time time.Time `json:"time"`
	// Scope names the subsystem: "2pc", "copy", "recovery", "repl".
	Scope string `json:"scope"`
	// ID is the correlation ID tying this event to its peers.
	ID string `json:"id"`
	// Phase is the span transition: "prepare", "commit", "abort",
	// "table_inflight", "table_copied", "enqueue", "apply", ...
	Phase string `json:"phase"`
	// Detail is optional free-form context (target machine, error text).
	Detail string `json:"detail,omitempty"`
}

// Tracer is a bounded ring buffer of span events. Recording takes one
// short mutex-guarded append; when the ring is full the oldest events are
// overwritten, so the tracer holds the most recent window of activity and
// never grows. A nil Tracer is valid and discards events.
type Tracer struct {
	mu   sync.Mutex
	buf  []Event
	next int // index in buf to write next
	full bool
	seq  uint64

	// dropped, when set, counts events overwritten before being read out.
	dropped *Counter
}

// NewTracer creates a tracer holding up to capacity events; capacity <= 0
// selects DefaultTraceCapacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends one event to the ring.
func (t *Tracer) Record(scope, id, phase, detail string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if t.full && t.dropped != nil {
		t.dropped.Inc()
	}
	t.seq++
	t.buf[t.next] = Event{Seq: t.seq, Time: now, Scope: scope, ID: id, Phase: phase, Detail: detail}
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Events returns the buffered events in recording order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event{}, t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// eventMatches is the one filter predicate shared by EventsFiltered,
// FilterEvents, and the admin plane's /tracez endpoint: an empty scope or id
// is a wildcard.
func eventMatches(e *Event, scope, id string) bool {
	return (scope == "" || e.Scope == scope) && (id == "" || e.ID == id)
}

// FilterEvents returns the events matching scope and id (empty = any),
// preserving order. It filters an already-captured slice (e.g.
// Snapshot.Trace); EventsFiltered filters the live ring.
func FilterEvents(events []Event, scope, id string) []Event {
	var out []Event
	for i := range events {
		if eventMatches(&events[i], scope, id) {
			out = append(out, events[i])
		}
	}
	return out
}

// EventsFiltered returns the buffered events matching scope and id (empty =
// any), oldest first. Unlike filtering the result of Events, it never copies
// the whole ring: a counting pass sizes the result exactly, so the only
// allocation is the returned slice (nil when nothing matches) — the /tracez
// endpoint can be polled without generating garbage proportional to the ring
// size.
func (t *Tracer) EventsFiltered(scope, id string) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	t.eachLocked(func(e *Event) {
		if eventMatches(e, scope, id) {
			n++
		}
	})
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	t.eachLocked(func(e *Event) {
		if eventMatches(e, scope, id) {
			out = append(out, *e)
		}
	})
	return out
}

// eachLocked visits the buffered events oldest first. Caller holds t.mu.
func (t *Tracer) eachLocked(fn func(*Event)) {
	if t.full {
		for i := t.next; i < len(t.buf); i++ {
			fn(&t.buf[i])
		}
	}
	for i := 0; i < t.next; i++ {
		fn(&t.buf[i])
	}
}

// ByID returns the buffered events with the given correlation ID, oldest
// first — the reassembled timeline of one transaction or one copy.
func (t *Tracer) ByID(id string) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.ID == id {
			out = append(out, e)
		}
	}
	return out
}

// ByScope returns the buffered events of one subsystem, oldest first.
func (t *Tracer) ByScope(scope string) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Scope == scope {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// WriteText dumps the buffered events, one per line, oldest first.
func (t *Tracer) WriteText(w io.Writer) {
	for _, e := range t.Events() {
		detail := ""
		if e.Detail != "" {
			detail = " " + e.Detail
		}
		fmt.Fprintf(w, "%6d %s %-8s %-16s %s%s\n",
			e.Seq, e.Time.Format("15:04:05.000000"), e.Scope, e.ID, e.Phase, detail)
	}
}
