// Package wire implements the platform's client/server network protocol:
// a length-prefixed binary framing over TCP, a server that fronts the
// platform's controller hierarchy (internal/core via internal/system), and
// a Go client library with connection pooling, pipelining, per-call
// deadlines, and retry of retryable errors. The paper's tenants spoke JDBC
// to a real network service; this package is that hop for the
// reproduction. PROTOCOL.md is the normative wire specification — the
// message-type constants below are cross-checked against it by
// `make doc-check` (cmd/doccheck -proto).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"sdp/internal/obs"
	"sdp/internal/sqldb"
)

// ProtoVersion is the protocol revision carried in the handshake. A server
// refuses a client with a different major version.
const ProtoVersion = 1

// MaxFrameSize bounds one frame (length prefix excluded). A peer announcing
// a larger frame is protocol-broken and the connection is closed.
const MaxFrameSize = 16 << 20

// frameHeaderSize is the fixed prefix after the u32 length: one type byte
// plus the u64 sequence ID.
const frameHeaderSize = 1 + 8

// Message types, client → server. The values are the wire bytes; names
// must match PROTOCOL.md (checked by cmd/doccheck -proto).
const (
	// MsgHello opens a session: protocol version, database, auth token.
	MsgHello = 0x01
	// MsgQuery executes one SQL string with parameters (simple query;
	// parsed server-side through the shared statement cache).
	MsgQuery = 0x02
	// MsgPrepare parses a statement once and returns a statement ID.
	MsgPrepare = 0x03
	// MsgExec executes a previously prepared statement by ID — the hot
	// path: no SQL text, no re-parse, plan-cache hit on the engine.
	MsgExec = 0x04
	// MsgBegin opens an explicit transaction on the session.
	MsgBegin = 0x05
	// MsgCommit commits the session's open transaction.
	MsgCommit = 0x06
	// MsgRollback aborts the session's open transaction.
	MsgRollback = 0x07
	// MsgCloseStmt discards a prepared statement.
	MsgCloseStmt = 0x08
	// MsgPing is a liveness probe; the server answers MsgPong.
	MsgPing = 0x09
	// MsgQuit asks for an orderly close; the server answers MsgBye.
	MsgQuit = 0x0A
)

// Message types, server → client.
const (
	// MsgWelcome acknowledges MsgHello: version plus a server banner.
	MsgWelcome = 0x81
	// MsgStmt acknowledges MsgPrepare with the new statement ID.
	MsgStmt = 0x82
	// MsgResult carries a statement's result set or affected-row count.
	MsgResult = 0x83
	// MsgError reports a failure: a numeric code (see ErrCode*) + text.
	MsgError = 0x84
	// MsgPong answers MsgPing.
	MsgPong = 0x85
	// MsgBye acknowledges MsgQuit (and is the last frame of a drain).
	MsgBye = 0x86
)

// Error codes carried by MsgError. Codes at or above ErrCodeRejected are
// retryable: the transaction (if any) was rolled back server-side and the
// client may simply retry, exactly as with the in-process API's
// sdp.IsRetryable. Names must match PROTOCOL.md.
const (
	// ErrCodeProtocol: malformed frame, bad version, message out of order.
	ErrCodeProtocol = 1
	// ErrCodeAuth: handshake token rejected for the requested database.
	ErrCodeAuth = 2
	// ErrCodeParse: SQL syntax error.
	ErrCodeParse = 3
	// ErrCodeDatabase: unknown database or colo routing failure.
	ErrCodeDatabase = 4
	// ErrCodeTxnState: BEGIN inside a transaction, COMMIT outside one, …
	ErrCodeTxnState = 5
	// ErrCodeStmt: unknown prepared-statement ID.
	ErrCodeStmt = 6
	// ErrCodeExec: non-retryable statement failure (duplicate key, type
	// mismatch, no such table/column, …).
	ErrCodeExec = 7
	// ErrCodeRejected: proactive Algorithm 1 rejection during replica
	// creation. Retryable.
	ErrCodeRejected = 100
	// ErrCodeDeadlock: chosen as deadlock victim. Retryable.
	ErrCodeDeadlock = 101
	// ErrCodeLockTimeout: lock wait exceeded the engine bound. Retryable.
	ErrCodeLockTimeout = 102
	// ErrCodeOptimisticConflict: lock-free read validation failed.
	// Retryable.
	ErrCodeOptimisticConflict = 103
	// ErrCodeStaleRoute: routed to a machine that no longer hosts the
	// database. Retryable — a retry re-routes.
	ErrCodeStaleRoute = 104
	// ErrCodeMachineFailed: a hosting machine failed mid-transaction.
	// Retryable.
	ErrCodeMachineFailed = 105
	// ErrCodeUnavailable: transient platform condition (2PC prepare
	// timeout, all replicas unreachable, simulated network fault).
	// Retryable.
	ErrCodeUnavailable = 106
	// ErrCodeShutdown: the server is draining; reconnect and retry.
	ErrCodeShutdown = 107
	// ErrCodeNotLeader: the contacted controller replica is not the
	// consensus leader, or the controller quorum is currently lost. The
	// message carries a leader hint when one is known. Retryable — a retry
	// lands after failover completes.
	ErrCodeNotLeader = 108
)

// Error is a server-reported failure decoded from a MsgError frame. It
// unwraps to the canonical in-process sentinel for its code, so
// errors.Is(err, sqldb.ErrDeadlock) and core.IsRetryable keep working
// across the network hop.
type Error struct {
	// Code is the wire error code (ErrCode*).
	Code uint16
	// Msg is the server's human-readable message.
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("wire: [%d] %s", e.Code, e.Msg) }

// Unwrap maps the code back to the matching in-process sentinel error.
func (e *Error) Unwrap() error { return sentinelFor(e.Code) }

// Retryable reports whether the error is transient and the operation can
// be retried (possibly on a new connection).
func (e *Error) Retryable() bool { return e.Code >= ErrCodeRejected }

// ErrServerShutdown is the sentinel unwrapped by ErrCodeShutdown errors.
var ErrServerShutdown = errors.New("wire: server shutting down")

// errProtocol is the sentinel behind ErrCodeProtocol responses.
var errProtocol = errors.New("wire: protocol error")

// IsRetryable reports whether err is retryable from the client's point of
// view: a retryable wire error code, or a connection-level failure on an
// idempotent operation the caller knows never reached execution.
func IsRetryable(err error) bool {
	var we *Error
	if errors.As(err, &we) {
		return we.Retryable()
	}
	return false
}

// frame is one decoded protocol frame.
type frame struct {
	typ     byte
	seq     uint64
	payload []byte
}

// writeFrame encodes one frame to w: u32 length (type+seq+payload), u8
// type, u64 seq, payload. It returns the number of bytes written.
func writeFrame(w io.Writer, typ byte, seq uint64, payload []byte) (int, error) {
	n := len(payload)
	if n > MaxFrameSize-frameHeaderSize {
		return 0, fmt.Errorf("%w: frame payload %d bytes exceeds limit", errProtocol, n)
	}
	hdr := make([]byte, 4+frameHeaderSize)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameHeaderSize+n))
	hdr[4] = typ
	binary.BigEndian.PutUint64(hdr[5:13], seq)
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	if n > 0 {
		if _, err := w.Write(payload); err != nil {
			return len(hdr), err
		}
	}
	return len(hdr) + n, nil
}

// readFrame decodes one frame from r, enforcing MaxFrameSize. Short reads
// mid-frame surface as io.ErrUnexpectedEOF.
func readFrame(r io.Reader) (frame, int, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, 0, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < frameHeaderSize {
		return frame{}, 4, fmt.Errorf("%w: frame length %d below header size", errProtocol, n)
	}
	if n > MaxFrameSize {
		return frame{}, 4, fmt.Errorf("%w: frame length %d exceeds limit", errProtocol, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, 4, err
	}
	return frame{
		typ:     buf[0],
		seq:     binary.BigEndian.Uint64(buf[1:9]),
		payload: buf[9:],
	}, 4 + int(n), nil
}

// ---------------------------------------------------------------------------
// Payload encoding primitives. All integers are big-endian; strings are
// u32 length + UTF-8 bytes; values are a one-byte type tag + payload.

// errShortPayload reports a truncated payload.
var errShortPayload = errors.New("wire: truncated payload")

func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// reader is a cursor over a payload; decode methods record the first error
// and become no-ops after it, so call sites stay linear.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() { r.err = errShortPayload }

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || int(n) > len(r.buf)-r.off {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// done reports whether the payload was consumed exactly; trailing garbage
// is a protocol error.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", errProtocol, len(r.buf)-r.off)
	}
	return nil
}

// Value type tags on the wire; they deliberately match sqldb.Type.
const (
	tagNull  = 0
	tagInt   = 1
	tagFloat = 2
	tagText  = 3
	tagBool  = 4
)

// appendValue encodes one SQL value.
func appendValue(b []byte, v sqldb.Value) ([]byte, error) {
	switch v.Typ {
	case sqldb.TypeNull:
		return append(b, tagNull), nil
	case sqldb.TypeInt:
		return appendU64(append(b, tagInt), uint64(v.Int)), nil
	case sqldb.TypeFloat:
		return appendU64(append(b, tagFloat), math.Float64bits(v.Float)), nil
	case sqldb.TypeText:
		return appendString(append(b, tagText), v.Str), nil
	case sqldb.TypeBool:
		bit := byte(0)
		if v.Bool {
			bit = 1
		}
		return append(b, tagBool, bit), nil
	default:
		return b, fmt.Errorf("%w: unencodable value type %v", errProtocol, v.Typ)
	}
}

// value decodes one SQL value.
func (r *reader) value() sqldb.Value {
	switch tag := r.u8(); tag {
	case tagNull:
		return sqldb.Null
	case tagInt:
		return sqldb.NewInt(int64(r.u64()))
	case tagFloat:
		return sqldb.NewFloat(math.Float64frombits(r.u64()))
	case tagText:
		return sqldb.NewText(r.str())
	case tagBool:
		return sqldb.NewBool(r.u8() != 0)
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: unknown value tag %d", errProtocol, tag)
		}
		return sqldb.Null
	}
}

// appendParams encodes a parameter list: u16 count + values.
func appendParams(b []byte, params []sqldb.Value) ([]byte, error) {
	if len(params) > math.MaxUint16 {
		return b, fmt.Errorf("%w: %d parameters", errProtocol, len(params))
	}
	b = appendU16(b, uint16(len(params)))
	var err error
	for _, p := range params {
		if b, err = appendValue(b, p); err != nil {
			return b, err
		}
	}
	return b, nil
}

// params decodes a parameter list.
func (r *reader) params() []sqldb.Value {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]sqldb.Value, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.value())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// traceFlagSampled marks the trace context as head-sampled; it is the only
// flag bit defined in protocol version 1.
const traceFlagSampled = 0x01

// appendTraceContext appends the optional trailing trace-context field of
// MsgQuery/MsgExec: u8 flags (bit0 = sampled), u64 trace_id, u64 span_id.
// An unsampled context appends nothing — the sampled-off wire image is
// byte-identical to a client that predates tracing, which is also what
// keeps old servers interoperable (they never see the field) and the hot
// path free of the 17 extra bytes.
func appendTraceContext(b []byte, tc obs.SpanContext) []byte {
	if !tc.Traced() {
		return b
	}
	b = append(b, traceFlagSampled)
	b = appendU64(b, tc.TraceID)
	return appendU64(b, tc.SpanID)
}

// traceContext decodes the optional trailing trace-context field if the
// payload has bytes left; a payload that ends exactly here simply carries
// no context. Called immediately before done().
func (r *reader) traceContext() obs.SpanContext {
	if r.err != nil || r.off >= len(r.buf) {
		return obs.SpanContext{}
	}
	flags := r.u8()
	tc := obs.SpanContext{TraceID: r.u64(), SpanID: r.u64(), Sampled: flags&traceFlagSampled != 0}
	if r.err != nil {
		return obs.SpanContext{}
	}
	return tc
}

// encodeResult encodes a MsgResult payload: u16 column count + names, u32
// row count + rows (each u16 value count + values), u32 affected.
func encodeResult(b []byte, res *sqldb.Result) ([]byte, error) {
	if res == nil {
		res = &sqldb.Result{}
	}
	if len(res.Cols) > math.MaxUint16 {
		return b, fmt.Errorf("%w: %d columns", errProtocol, len(res.Cols))
	}
	b = appendU16(b, uint16(len(res.Cols)))
	for _, c := range res.Cols {
		b = appendString(b, c)
	}
	b = appendU32(b, uint32(len(res.Rows)))
	var err error
	for _, row := range res.Rows {
		if len(row) > math.MaxUint16 {
			return b, fmt.Errorf("%w: %d values in row", errProtocol, len(row))
		}
		b = appendU16(b, uint16(len(row)))
		for _, v := range row {
			if b, err = appendValue(b, v); err != nil {
				return b, err
			}
		}
	}
	return appendU32(b, uint32(res.Affected)), nil
}

// decodeResult decodes a MsgResult payload.
func decodeResult(payload []byte) (*sqldb.Result, error) {
	r := &reader{buf: payload}
	res := &sqldb.Result{}
	ncols := int(r.u16())
	for i := 0; i < ncols && r.err == nil; i++ {
		res.Cols = append(res.Cols, r.str())
	}
	nrows := int(r.u32())
	for i := 0; i < nrows && r.err == nil; i++ {
		nvals := int(r.u16())
		row := make(sqldb.Row, 0, nvals)
		for j := 0; j < nvals && r.err == nil; j++ {
			row = append(row, r.value())
		}
		res.Rows = append(res.Rows, row)
	}
	res.Affected = int(r.u32())
	if err := r.done(); err != nil {
		return nil, err
	}
	return res, nil
}

// encodeError encodes a MsgError payload: u16 code + message string.
func encodeError(b []byte, code uint16, msg string) []byte {
	return appendString(appendU16(b, code), msg)
}

// decodeError decodes a MsgError payload into a *Error.
func decodeError(payload []byte) (*Error, error) {
	r := &reader{buf: payload}
	e := &Error{Code: r.u16(), Msg: r.str()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return e, nil
}
