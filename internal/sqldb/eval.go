package sqldb

import (
	"fmt"
)

// colBinding associates one position of a joined row with its table alias
// and column name (both lower-cased).
type colBinding struct {
	table string
	col   string
}

// evalCtx is the environment an expression is evaluated in. In grouped
// evaluation, row is the group's representative row and groupRows holds the
// full group for aggregate functions.
type evalCtx struct {
	bindings  []colBinding
	row       Row
	params    []Value
	groupRows []Row
	grouped   bool
}

// evalExpr evaluates e in ctx using SQL three-valued logic: unknown is
// represented as the NULL value.
func evalExpr(e Expr, ctx *evalCtx) (Value, error) {
	switch ex := e.(type) {
	case *LiteralExpr:
		return ex.Val, nil
	case *ParamExpr:
		if ex.Index >= len(ctx.params) {
			return Null, fmt.Errorf("sqldb: missing binding for parameter %d", ex.Index+1)
		}
		return ctx.params[ex.Index], nil
	case *ColumnExpr:
		idx := resolveBinding(ctx.bindings, ex)
		if idx == -2 {
			return Null, errAmbiguous(ex.Col)
		}
		if idx < 0 {
			return Null, fmt.Errorf("%w: %s", ErrNoColumn, ex.Col)
		}
		if idx >= len(ctx.row) {
			return Null, nil
		}
		return ctx.row[idx], nil
	case *BinaryExpr:
		return evalBinary(ex, ctx)
	case *UnaryExpr:
		v, err := evalExpr(ex.E, ctx)
		if err != nil {
			return Null, err
		}
		return applyUnary(ex.Op, v)
	case *InExpr:
		v, err := evalExpr(ex.E, ctx)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		sawNull := false
		for _, le := range ex.List {
			lv, err := evalExpr(le, ctx)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() {
				sawNull = true
				continue
			}
			if Equal(v, lv) {
				return NewBool(!ex.Negate), nil
			}
		}
		if sawNull {
			return Null, nil
		}
		return NewBool(ex.Negate), nil
	case *BetweenExpr:
		v, err := evalExpr(ex.E, ctx)
		if err != nil {
			return Null, err
		}
		lo, err := evalExpr(ex.Lo, ctx)
		if err != nil {
			return Null, err
		}
		hi, err := evalExpr(ex.Hi, ctx)
		if err != nil {
			return Null, err
		}
		return applyBetween(v, lo, hi, ex.Negate), nil
	case *LikeExpr:
		v, err := evalExpr(ex.E, ctx)
		if err != nil {
			return Null, err
		}
		p, err := evalExpr(ex.Pattern, ctx)
		if err != nil {
			return Null, err
		}
		return applyLike(v, p, ex.Negate)
	case *IsNullExpr:
		v, err := evalExpr(ex.E, ctx)
		if err != nil {
			return Null, err
		}
		isNull := v.IsNull()
		if ex.Negate {
			isNull = !isNull
		}
		return NewBool(isNull), nil
	case *AggExpr:
		return evalAggregate(ex, ctx)
	default:
		return Null, fmt.Errorf("sqldb: unsupported expression %T", e)
	}
}

func evalBinary(ex *BinaryExpr, ctx *evalCtx) (Value, error) {
	l, err := evalExpr(ex.L, ctx)
	if err != nil {
		return Null, err
	}
	r, err := evalExpr(ex.R, ctx)
	if err != nil {
		return Null, err
	}
	// AND/OR need three-valued evaluation before the NULL short-circuit.
	if ex.Op == OpAnd || ex.Op == OpOr {
		return applyBoolPair(ex.Op, l, r)
	}
	return applyBinary(ex.Op, l, r)
}

// applyBoolPair combines two already-evaluated operands under AND/OR
// three-valued logic. Shared by the tree-walking evaluator and the compiled
// expression closures so both paths have identical semantics.
func applyBoolPair(op BinOp, l, r Value) (Value, error) {
	lt, lk := boolState(l)
	rt, rk := boolState(r)
	if !lk || !rk {
		return Null, fmt.Errorf("%w: %s applied to non-boolean", ErrTypeMismatch, op)
	}
	if op == OpAnd {
		switch {
		case lt == tvFalse || rt == tvFalse:
			return NewBool(false), nil
		case lt == tvNull || rt == tvNull:
			return Null, nil
		default:
			return NewBool(true), nil
		}
	}
	switch {
	case lt == tvTrue || rt == tvTrue:
		return NewBool(true), nil
	case lt == tvNull || rt == tvNull:
		return Null, nil
	default:
		return NewBool(false), nil
	}
}

// applyBinary applies a comparison or arithmetic operator to two
// already-evaluated operands. Shared by the tree-walking evaluator and the
// compiled expression closures.
func applyBinary(op BinOp, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null, nil
	}

	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if !comparable(l, r) {
			return Null, fmt.Errorf("%w: cannot compare %s with %s", ErrTypeMismatch, l.Typ, r.Typ)
		}
		c := Compare(l, r)
		var out bool
		switch op {
		case OpEq:
			out = c == 0
		case OpNe:
			out = c != 0
		case OpLt:
			out = c < 0
		case OpLe:
			out = c <= 0
		case OpGt:
			out = c > 0
		case OpGe:
			out = c >= 0
		}
		return NewBool(out), nil
	case OpAdd, OpSub, OpMul, OpDiv:
		if !l.numeric() || !r.numeric() {
			return Null, fmt.Errorf("%w: arithmetic on %s and %s", ErrTypeMismatch, l.Typ, r.Typ)
		}
		if l.Typ == TypeInt && r.Typ == TypeInt && op != OpDiv {
			switch op {
			case OpAdd:
				return NewInt(l.Int + r.Int), nil
			case OpSub:
				return NewInt(l.Int - r.Int), nil
			case OpMul:
				return NewInt(l.Int * r.Int), nil
			}
		}
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case OpAdd:
			return NewFloat(lf + rf), nil
		case OpSub:
			return NewFloat(lf - rf), nil
		case OpMul:
			return NewFloat(lf * rf), nil
		default:
			if rf == 0 {
				return Null, nil // SQL: division by zero yields NULL
			}
			return NewFloat(lf / rf), nil
		}
	}
	return Null, fmt.Errorf("sqldb: unknown binary operator %s", op)
}

// applyUnary applies NOT or unary minus to an already-evaluated operand.
// Shared by the tree-walking evaluator and the compiled expression closures.
func applyUnary(op UnOp, v Value) (Value, error) {
	switch op {
	case OpNot:
		if v.IsNull() {
			return Null, nil
		}
		if v.Typ != TypeBool {
			return Null, fmt.Errorf("%w: NOT applied to %s", ErrTypeMismatch, v.Typ)
		}
		return NewBool(!v.Bool), nil
	case OpNeg:
		switch v.Typ {
		case TypeNull:
			return Null, nil
		case TypeInt:
			return NewInt(-v.Int), nil
		case TypeFloat:
			return NewFloat(-v.Float), nil
		default:
			return Null, fmt.Errorf("%w: unary minus applied to %s", ErrTypeMismatch, v.Typ)
		}
	}
	return Null, fmt.Errorf("sqldb: unknown unary operator")
}

// applyBetween applies BETWEEN three-valued logic to evaluated operands.
func applyBetween(v, lo, hi Value, negate bool) Value {
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return Null
	}
	in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
	if negate {
		in = !in
	}
	return NewBool(in)
}

// applyLike applies LIKE three-valued logic to evaluated operands.
func applyLike(v, p Value, negate bool) (Value, error) {
	if v.IsNull() || p.IsNull() {
		return Null, nil
	}
	if v.Typ != TypeText || p.Typ != TypeText {
		return Null, fmt.Errorf("%w: LIKE wants TEXT operands", ErrTypeMismatch)
	}
	m := likeMatch(v.Str, p.Str)
	if negate {
		m = !m
	}
	return NewBool(m), nil
}

// comparable reports whether two non-null values can be ordered.
func comparable(a, b Value) bool {
	if a.numeric() && b.numeric() {
		return true
	}
	return a.Typ == b.Typ
}

// three-valued truth states.
type triState int

const (
	tvFalse triState = iota
	tvTrue
	tvNull
)

func boolState(v Value) (triState, bool) {
	switch v.Typ {
	case TypeNull:
		return tvNull, true
	case TypeBool:
		if v.Bool {
			return tvTrue, true
		}
		return tvFalse, true
	default:
		return tvFalse, false
	}
}

// predTrue evaluates a predicate and reports whether it is definitely true
// (SQL WHERE semantics: NULL filters the row out).
func predTrue(e Expr, ctx *evalCtx) (bool, error) {
	v, err := evalExpr(e, ctx)
	if err != nil {
		return false, err
	}
	st, ok := boolState(v)
	if !ok {
		return false, fmt.Errorf("%w: predicate evaluated to %s", ErrTypeMismatch, v.Typ)
	}
	return st == tvTrue, nil
}

// evalAggregate computes an aggregate over the current group.
func evalAggregate(ex *AggExpr, ctx *evalCtx) (Value, error) {
	if !ctx.grouped {
		return Null, fmt.Errorf("sqldb: aggregate %s outside grouped context", ex.Fn)
	}
	rows := ctx.groupRows

	if ex.Star {
		if ex.Fn != AggCount {
			return Null, fmt.Errorf("sqldb: %s(*) is not valid", ex.Fn)
		}
		return NewInt(int64(len(rows))), nil
	}

	count := int64(0)
	var sum float64
	sumIsInt := true
	var sumInt int64
	var minV, maxV Value
	first := true
	var seen map[string]bool
	if ex.Distinct {
		seen = make(map[string]bool)
	}
	for _, r := range rows {
		sub := &evalCtx{bindings: ctx.bindings, row: r, params: ctx.params}
		v, err := evalExpr(ex.E, sub)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			continue
		}
		if seen != nil {
			k := keyString(v)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		count++
		switch ex.Fn {
		case AggSum, AggAvg:
			if !v.numeric() {
				return Null, fmt.Errorf("%w: %s over %s", ErrTypeMismatch, ex.Fn, v.Typ)
			}
			if v.Typ == TypeInt {
				sumInt += v.Int
			} else {
				sumIsInt = false
			}
			sum += v.AsFloat()
		case AggMin:
			if first || Compare(v, minV) < 0 {
				minV = v
			}
		case AggMax:
			if first || Compare(v, maxV) > 0 {
				maxV = v
			}
		}
		first = false
	}

	switch ex.Fn {
	case AggCount:
		return NewInt(count), nil
	case AggSum:
		if count == 0 {
			return Null, nil
		}
		if sumIsInt {
			return NewInt(sumInt), nil
		}
		return NewFloat(sum), nil
	case AggAvg:
		if count == 0 {
			return Null, nil
		}
		return NewFloat(sum / float64(count)), nil
	case AggMin:
		if count == 0 {
			return Null, nil
		}
		return minV, nil
	case AggMax:
		if count == 0 {
			return Null, nil
		}
		return maxV, nil
	}
	return Null, fmt.Errorf("sqldb: unknown aggregate")
}
