package obs

import (
	"fmt"
	"strings"
)

// labelSep joins label values into a map key; it is a control character so
// ordinary label values cannot collide.
const labelSep = "\x1f"

// joinKey builds the lookup key for a set of label values, enforcing arity.
func (f *familyVec) joinKey(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: family expects %d label values (%v), got %d",
			len(f.labels), f.labels, len(values)))
	}
	return strings.Join(values, labelSep)
}

// get returns (creating with mk if needed) the instrument for the label
// values. The fast path is a read-locked map hit.
func (f *familyVec) get(values []string, mk func() any) any {
	key := f.joinKey(values)
	f.mu.RLock()
	inst, ok := f.byKey[key]
	f.mu.RUnlock()
	if ok {
		return inst
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if inst, ok := f.byKey[key]; ok {
		return inst
	}
	inst = mk()
	f.byKey[key] = inst
	return inst
}

// each visits every instrument with its label values, sorted by key.
func (f *familyVec) each(fn func(values []string, inst any)) {
	f.mu.RLock()
	keys := sortedKeys(f.byKey)
	insts := make([]any, len(keys))
	for i, k := range keys {
		insts[i] = f.byKey[k]
	}
	f.mu.RUnlock()
	for i, k := range keys {
		var values []string
		if k != "" || len(f.labels) > 0 {
			values = strings.Split(k, labelSep)
		}
		fn(values, insts[i])
	}
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	fam *familyVec
}

// With returns the counter for the given label values, creating it on first
// use. Hot paths should resolve once and keep the pointer.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.get(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	fam *familyVec
}

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.get(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	fam *familyVec
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.fam
	return f.get(values, func() any { return NewHistogram(f.buckets) }).(*Histogram)
}
