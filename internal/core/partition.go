package core

import (
	"fmt"
	"hash/fnv"

	"sdp/internal/sqldb"
)

// The paper's Section 7 sketches an extension for the minority of
// applications that outgrow a single machine while most stay small. This
// file implements that extension as table-level partitioning: a partitioned
// database's tables are spread over several machine groups ("partitions"),
// each group internally replicated exactly like a normal database. Writes
// route to the owning partition's replicas; a transaction may touch tables
// in different partitions and commits atomically because the controller
// already runs two-phase commit across every machine a transaction
// touched. The one restriction is that a single SELECT cannot join tables
// living in different partitions (each machine only holds its partition's
// tables); such queries fail with ErrCrossPartition.

// ErrCrossPartition is returned for a query that would need to join tables
// hosted in different partitions.
var ErrCrossPartition = fmt.Errorf("core: query joins tables in different partitions")

// partition is one machine group of a partitioned database.
type partitionState struct {
	replicas []string
	readHome string
}

// CreatePartitionedDatabase creates a database whose tables will be spread
// over the given machine groups. Each group hosts a full replica set of its
// partition's tables. Groups must be disjoint. Tables are assigned to
// partitions by a stable hash of their name at CREATE TABLE time.
//
// Partitioned databases are a prototype of the paper's future-work
// extension: replica creation, migration, and SLA placement apply to the
// small-database majority and are not supported for partitioned databases.
func (c *Cluster) CreatePartitionedDatabase(db string, groups [][]string) error {
	if len(groups) < 1 {
		return fmt.Errorf("%w: no partitions given for %s", ErrNoReplicas, db)
	}
	seen := make(map[string]bool)
	for _, g := range groups {
		if len(g) == 0 {
			return fmt.Errorf("%w: empty partition for %s", ErrNoReplicas, db)
		}
		for _, id := range g {
			if seen[id] {
				return fmt.Errorf("core: machine %s appears in two partitions of %s", id, db)
			}
			seen[id] = true
		}
	}
	c.mu.Lock()
	if _, dup := c.dbs[db]; dup {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDatabaseExists, db)
	}
	var ms []*Machine
	for _, g := range groups {
		for _, id := range g {
			m, ok := c.machines[id]
			if !ok {
				c.mu.Unlock()
				return fmt.Errorf("%w: %s", ErrNoMachine, id)
			}
			if m.Failed() {
				c.mu.Unlock()
				return fmt.Errorf("%w: %s", ErrMachineFailed, id)
			}
			ms = append(ms, m)
		}
	}
	c.mu.Unlock()

	for _, m := range ms {
		if err := m.Engine().CreateDatabase(db); err != nil {
			return err
		}
		m.dbCount.Add(1)
	}

	parts := make([]partitionState, len(groups))
	for i, g := range groups {
		parts[i] = partitionState{
			replicas: append([]string{}, g...),
			readHome: g[i%len(g)],
		}
	}
	var epoch uint64
	if cp := c.ctl; cp != nil {
		// Only the database's existence and epoch replicate; the partition
		// layout stays leader-local (partitioned databases are the
		// future-work prototype — no copies, no re-placement — so a takeover
		// has nothing to reconcile beyond existence).
		cp.mu.Lock()
		defer cp.mu.Unlock()
		res, err := cp.propose(ctlCmd{Op: ctlOpCreateDB, DB: db, Partitioned: true})
		if err != nil {
			for _, m := range ms {
				if derr := m.Engine().DropDatabase(db); derr == nil {
					m.dbCount.Add(-1)
				}
			}
			return err
		}
		cr, _ := res.(ctlCreateResult)
		epoch = cr.Epoch
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dbs[db] = &dbState{
		name:       db,
		epoch:      epoch,
		partitions: parts,
		tableAt:    make(map[string]int),
	}
	return nil
}

// partitionFor returns (assigning on first use) the partition index of a
// table. Called with the cluster mutex held on a partitioned database.
func (ds *dbState) partitionFor(table string) int {
	if idx, ok := ds.tableAt[table]; ok {
		return idx
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(table))
	idx := int(h.Sum32()) % len(ds.partitions)
	if idx < 0 {
		idx += len(ds.partitions)
	}
	ds.tableAt[table] = idx
	return idx
}

// partitioned reports whether the database is table-partitioned.
func (ds *dbState) partitioned() bool { return len(ds.partitions) > 0 }

// partitionWriteRoute decides the target machines of a write on a
// partitioned database. Called with the cluster mutex held.
func (ds *dbState) partitionWriteRoute(table string) ([]string, error) {
	p := &ds.partitions[ds.partitionFor(table)]
	if len(p.replicas) == 0 {
		return nil, ErrNoReplicas
	}
	return append([]string{}, p.replicas...), nil
}

// partitionReadRoute picks the replica serving reads of the given tables.
// All tables must live in one partition; reads use that partition's home
// replica (Option 1 semantics — partitioned databases are large, and the
// paper's locality argument applies with even more force).
func (c *Cluster) partitionReadRoute(ds *dbState, tables []string) (string, error) {
	if len(tables) == 0 {
		return "", fmt.Errorf("core: query references no tables")
	}
	first := ds.partitionFor(lowerName(tables[0]))
	for _, t := range tables[1:] {
		if ds.partitionFor(lowerName(t)) != first {
			return "", ErrCrossPartition
		}
	}
	p := &ds.partitions[first]
	if len(p.replicas) == 0 {
		return "", ErrNoReplicas
	}
	if !contains(p.replicas, p.readHome) {
		p.readHome = p.replicas[0]
	}
	return p.readHome, nil
}

// Partitions returns, for a partitioned database, each partition's machine
// IDs (copy). For normal databases it returns nil.
func (c *Cluster) Partitions(db string) [][]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, ok := c.dbs[db]
	if !ok || !ds.partitioned() {
		return nil
	}
	out := make([][]string, len(ds.partitions))
	for i, p := range ds.partitions {
		out[i] = append([]string{}, p.replicas...)
	}
	return out
}

// TablePartition returns the partition index a table is (or would be)
// assigned to, or -1 for non-partitioned databases.
func (c *Cluster) TablePartition(db, table string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, ok := c.dbs[db]
	if !ok || !ds.partitioned() {
		return -1
	}
	return ds.partitionFor(lowerName(table))
}

// selectTables lists the table names referenced by a SELECT.
func selectTables(s *sqldb.SelectStmt) []string {
	if s.From == nil {
		return nil
	}
	out := []string{s.From.Table}
	for _, j := range s.Joins {
		out = append(out, j.Table.Table)
	}
	return out
}
