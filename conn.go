package sdp

import (
	"sdp/internal/core"
	"sdp/internal/sqldb"
)

// Conn is a client connection to one database. Connections are routed
// through the controller hierarchy, so the client never learns which
// machines host its data; machine failures and migrations are invisible
// beyond transient retryable errors.
type Conn struct {
	p  *Platform
	db string
}

// Database returns the database name this connection is bound to.
func (c *Conn) Database() string { return c.db }

// Begin starts an ACID transaction.
func (c *Conn) Begin() (*Tx, error) {
	inner, err := c.p.sys.Begin(c.db)
	if err != nil {
		return nil, err
	}
	return &Tx{inner: inner}, nil
}

// Exec runs one statement in its own transaction (autocommit).
func (c *Conn) Exec(sql string, params ...Value) (*Result, error) {
	return c.p.sys.Exec(c.db, sql, params...)
}

// Query is Exec for SELECT statements; provided for readability.
func (c *Conn) Query(sql string, params ...Value) (*Result, error) {
	return c.Exec(sql, params...)
}

// Tx is an ACID transaction spanning all replicas of the database.
type Tx struct {
	inner interface {
		Exec(string, ...Value) (*Result, error)
		ExecStmt(string, sqldb.Statement, ...Value) (*Result, error)
		Commit() error
		Rollback() error
	}
}

// Exec runs one statement inside the transaction.
func (t *Tx) Exec(sql string, params ...Value) (*Result, error) {
	return t.inner.Exec(sql, params...)
}

// Query is Exec for SELECT statements.
func (t *Tx) Query(sql string, params ...Value) (*Result, error) {
	return t.inner.Exec(sql, params...)
}

// Commit makes the transaction durable on every replica (2PC).
func (t *Tx) Commit() error { return t.inner.Commit() }

// Rollback aborts the transaction on every replica.
func (t *Tx) Rollback() error { return t.inner.Rollback() }

// IsRetryable reports whether an error is transient (deadlock victim, lock
// timeout, proactive rejection during recovery, machine failure) and the
// transaction can simply be retried.
func IsRetryable(err error) bool { return core.IsRetryable(err) }
