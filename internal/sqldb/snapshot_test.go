package sqldb

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	e := NewEngine(DefaultConfig())
	for _, db := range []string{"alpha", "beta"} {
		if err := e.CreateDatabase(db); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Exec(db, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT, f FLOAT, b BOOL)"); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Exec(db, "CREATE INDEX idx_v ON t (v)"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 150; i++ {
			sql := fmt.Sprintf("INSERT INTO t VALUES (%d, 'v%d', %d.5, %v)", i, i%7, i, i%2 == 0)
			if _, err := e.Exec(db, sql); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Exec(db, "DELETE FROM t WHERE id = 13"); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Exec(db, "INSERT INTO t VALUES (999, NULL, NULL, NULL)"); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := e.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(DefaultConfig())
	if err := e2.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, db := range []string{"alpha", "beta"} {
		for _, q := range []string{
			"SELECT COUNT(*), SUM(id), SUM(f) FROM t",
			"SELECT COUNT(*) FROM t WHERE v = 'v3'", // via the restored index
			"SELECT v FROM t WHERE id = 999",
		} {
			want, err := e.Exec(db, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e2.Exec(db, q)
			if err != nil {
				t.Fatalf("%s on restored: %v", q, err)
			}
			if fmt.Sprint(want.Rows) != fmt.Sprint(got.Rows) {
				t.Errorf("%s/%s: %v vs %v", db, q, want.Rows, got.Rows)
			}
		}
		// The restored engine is fully writable.
		if _, err := e2.Exec(db, "INSERT INTO t VALUES (1000, 'new', 0.0, TRUE)"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotEmptyEngine(t *testing.T) {
	e := NewEngine(DefaultConfig())
	var buf bytes.Buffer
	if err := e.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(DefaultConfig())
	if err := e2.RestoreFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if len(e2.Databases()) != 0 {
		t.Errorf("databases = %v", e2.Databases())
	}
}

func TestRestoreRequiresEmptyEngine(t *testing.T) {
	e := newTestDB(t)
	var buf bytes.Buffer
	if err := e.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreFrom(&buf); err == nil {
		t.Error("restore into non-empty engine succeeded")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	e := NewEngine(DefaultConfig())
	if err := e.RestoreFrom(strings.NewReader("not a snapshot at all")); err == nil {
		t.Error("garbage accepted")
	}
	e2 := NewEngine(DefaultConfig())
	if err := e2.RestoreFrom(strings.NewReader("SDPSNAP1")); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

// TestSnapshotConsistentUnderWrites takes a snapshot while writers run and
// checks the restored image satisfies the workload's invariant (the total
// across accounts is a multiple of nothing lost — transfers preserve sum).
func TestSnapshotConsistentUnderWrites(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
	const n = 16
	for i := 0; i < n; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO acct VALUES (%d, 100)", i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				tx, err := e.Begin("app")
				if err != nil {
					continue
				}
				_, e1 := tx.Exec("UPDATE acct SET bal = bal - 1 WHERE id = ?", NewInt(int64(i%n)))
				var e2 error
				if e1 == nil {
					_, e2 = tx.Exec("UPDATE acct SET bal = bal + 1 WHERE id = ?", NewInt(int64((i*3+1)%n)))
				}
				if e1 != nil || e2 != nil {
					_ = tx.Rollback()
					continue
				}
				_ = tx.Commit()
			}
		}(w * 5)
	}

	var buf bytes.Buffer
	if err := e.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	e2 := NewEngine(DefaultConfig())
	if err := e2.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	res, err := e2.Exec("app", "SELECT SUM(bal), COUNT(*) FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].Int != n {
		t.Fatalf("restored rows = %v", res.Rows[0][1])
	}
	if res.Rows[0][0].Int != n*100 {
		t.Errorf("restored total = %v, want %d (snapshot tore a transfer)", res.Rows[0][0], n*100)
	}
}
