package sqldb

import (
	"fmt"
	"strings"
)

// execExplain describes the access paths the executor would choose for the
// inner statement, without executing it. The result has columns
// (table, access, detail): access is one of "point" (primary-key lookup),
// "index" (secondary-index equality), "range" (ordered index or primary-key
// traversal for <, <=, >, >=, BETWEEN), "scan" (full table scan), "insert",
// or the join strategy "hash-join"/"nested-loop" for joined tables.
func (e *Engine) execExplain(t *Txn, s *ExplainStmt, params []Value) (*Result, error) {
	res := &Result{Cols: []string{"table", "access", "detail"}}
	add := func(table, access, detail string) {
		res.Rows = append(res.Rows, Row{NewText(table), NewText(access), NewText(detail)})
	}

	switch inner := s.Inner.(type) {
	case *SelectStmt:
		if inner.From == nil {
			add("", "const", "no FROM clause")
			return res, nil
		}
		tbl, err := e.Table(t.db, inner.From.Table)
		if err != nil {
			return nil, err
		}
		if len(inner.Joins) == 0 {
			access, detail := e.explainAccess(tbl, inner.Where, params)
			add(tbl.Name(), access, detail+" exec="+explainExecMode(tbl, inner))
			return res, nil
		}
		add(tbl.Name(), "scan", "join build side")
		bindings := bindingsFor(tbl.schema, inner.From.Name())
		for _, j := range inner.Joins {
			jt, err := e.Table(t.db, j.Table.Table)
			if err != nil {
				return nil, err
			}
			strategy := "nested-loop"
			detail := "general ON predicate"
			if eq, ok := j.On.(*BinaryExpr); ok && eq.Op == OpEq {
				lc, lok := eq.L.(*ColumnExpr)
				rc, rok := eq.R.(*ColumnExpr)
				if lok && rok {
					rightBind := bindingsFor(jt.schema, j.Table.Name())
					if (resolveBinding(bindings, lc) >= 0 && resolveBinding(rightBind, rc) >= 0) ||
						(resolveBinding(bindings, rc) >= 0 && resolveBinding(rightBind, lc) >= 0) {
						strategy = "hash-join"
						detail = fmt.Sprintf("ON %s = %s", exprName(lc), exprName(rc))
					}
					bindings = append(bindings, rightBind...)
				}
			}
			add(jt.Name(), strategy, detail)
		}
		return res, nil

	case *UpdateStmt:
		tbl, err := e.Table(t.db, inner.Table)
		if err != nil {
			return nil, err
		}
		access, detail := e.explainAccess(tbl, inner.Where, params)
		add(tbl.Name(), access, detail+" (update)")
		return res, nil

	case *DeleteStmt:
		tbl, err := e.Table(t.db, inner.Table)
		if err != nil {
			return nil, err
		}
		access, detail := e.explainAccess(tbl, inner.Where, params)
		add(tbl.Name(), access, detail+" (delete)")
		return res, nil

	case *InsertStmt:
		tbl, err := e.Table(t.db, inner.Table)
		if err != nil {
			return nil, err
		}
		add(tbl.Name(), "insert", fmt.Sprintf("%d row(s)", len(inner.Rows)))
		return res, nil

	default:
		return nil, fmt.Errorf("sqldb: EXPLAIN supports SELECT/INSERT/UPDATE/DELETE, not %T", s.Inner)
	}
}

// explainExecMode reports whether a single-table SELECT would execute on the
// compiled closure pipeline or fall back to the tree-walking interpreter, by
// attempting the same compilation the planner performs.
func explainExecMode(tbl *Table, s *SelectStmt) string {
	bind := bindingsFor(tbl.schema, s.From.Name())
	if validateSelect(s, bind) == nil {
		if items, cols, err := expandStars(s.Items, bind); err == nil {
			sel := &selPlan{items: items, cols: cols}
			if compileSelect(tbl, s, sel, planWhere(tbl, s.Where)) != nil {
				return "compiled"
			}
		}
	}
	return "interpreted"
}

// explainAccess mirrors the executor's access-path choice for one table by
// running the same planner the execution path caches.
func (e *Engine) explainAccess(tbl *Table, where Expr, params []Value) (access, detail string) {
	path := planWhere(tbl, where)
	switch path.kind {
	case pathPoint:
		return "point", fmt.Sprintf("%s = %s", tbl.schema.Cols[tbl.schema.PKIdx].Name, constString(path.eq, params))
	case pathIndexEq:
		return "index", fmt.Sprintf("%s = %s", path.col, constString(path.eq, params))
	case pathIndexRange:
		return "range", rangeDetail(path, params)
	}
	if where == nil {
		return "scan", fmt.Sprintf("all %d rows", tbl.RowCount())
	}
	return "scan", fmt.Sprintf("filter over %d rows", tbl.RowCount())
}

// constString renders a constant bound expression for EXPLAIN output,
// resolving parameters when bindings were supplied.
func constString(e Expr, params []Value) string {
	if v, err := evalConst(e, params); err == nil {
		return v.String()
	}
	return "?"
}

// rangeDetail renders the bounds of a range path, e.g. "price >= 10 AND
// price < 20".
func rangeDetail(p *accessPath, params []Value) string {
	var parts []string
	if p.lo != nil {
		op := ">"
		if p.loIncl {
			op = ">="
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", p.col, op, constString(p.lo, params)))
	}
	if p.hi != nil {
		op := "<"
		if p.hiIncl {
			op = "<="
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", p.col, op, constString(p.hi, params)))
	}
	return strings.Join(parts, " AND ")
}

func exprName(ce *ColumnExpr) string {
	if ce.Table != "" {
		return ce.Table + "." + ce.Col
	}
	return ce.Col
}

// ExplainString renders an EXPLAIN result as aligned text.
func ExplainString(res *Result) string {
	var sb strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-14s %-12s %s\n", r[0].Str, r[1].Str, r[2].Str)
	}
	return sb.String()
}
