package core

import (
	"errors"
	"fmt"

	"sdp/internal/sla"
)

// ErrNoCapacity is returned when no combination of live machines can host a
// database's replicas without violating resource constraints. The colo
// controller reacts by adding machines from the free pool.
var ErrNoCapacity = errors.New("core: insufficient capacity for SLA placement")

// SetCapacity assigns a machine's resource capacity R[i] (paper Section 4).
// Machines default to the unit capacity.
func (m *Machine) SetCapacity(cap sla.Resources) {
	m.mu.Lock()
	m.capacity = cap
	m.hasCap = true
	m.mu.Unlock()
}

// Capacity returns the machine's resource capacity.
func (m *Machine) Capacity() sla.Resources {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.hasCap {
		return sla.UnitMachine(m.id).Cap
	}
	return m.capacity
}

// Used returns the resources reserved on the machine by SLA placement.
func (m *Machine) Used() sla.Resources {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// reserve adds req to the machine's reservation if it fits; it reports
// whether the reservation succeeded.
func (m *Machine) reserve(req sla.Resources) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cap := m.capacity
	if !m.hasCap {
		cap = sla.UnitMachine(m.id).Cap
	}
	if !m.used.Add(req).Fits(cap) {
		return false
	}
	m.used = m.used.Add(req)
	return true
}

// release subtracts req from the machine's reservation.
func (m *Machine) release(req sla.Resources) {
	m.mu.Lock()
	m.used = m.used.Sub(req)
	m.mu.Unlock()
}

// PlaceWithSLA creates a database whose replicas are placed by First-Fit
// (the paper's Algorithm 2) against the machines' capacities and current
// reservations. req is the per-replica resource requirement r[j] observed
// during the profiling period. It returns the chosen machine IDs.
func (c *Cluster) PlaceWithSLA(db string, req sla.Resources, replicas int) ([]string, error) {
	if replicas <= 0 {
		replicas = c.opts.Replicas
	}
	c.mu.Lock()
	order := append([]string{}, c.order...)
	machines := make(map[string]*Machine, len(c.machines))
	for id, m := range c.machines {
		machines[id] = m
	}
	c.mu.Unlock()

	var chosen []string
	var reserved []*Machine
	undo := func() {
		for _, m := range reserved {
			m.release(req)
		}
	}
	probes := uint64(0)
	for _, id := range order {
		if len(chosen) == replicas {
			break
		}
		m := machines[id]
		if m.Failed() {
			continue
		}
		probes++
		if m.reserve(req) {
			chosen = append(chosen, id)
			reserved = append(reserved, m)
		}
	}
	c.metrics.slaProbes.Add(probes)
	if len(chosen) < replicas {
		undo()
		c.metrics.slaPlacements.With("no_capacity").Inc()
		return nil, fmt.Errorf("%w: %s needs %d replicas of %s", ErrNoCapacity, db, replicas, req)
	}
	if err := c.CreateDatabaseOn(db, chosen); err != nil {
		undo()
		c.metrics.slaPlacements.With("error").Inc()
		return nil, err
	}
	c.metrics.slaPlacements.With("placed").Inc()
	c.mu.Lock()
	if ds, ok := c.dbs[db]; ok {
		ds.req = req
	}
	c.mu.Unlock()
	return chosen, nil
}

// ReleaseSLA drops the reservations of a database after it is dropped.
func (c *Cluster) ReleaseSLA(db string, machineIDs []string, req sla.Resources) {
	for _, id := range machineIDs {
		if m, err := c.Machine(id); err == nil {
			m.release(req)
		}
	}
}
