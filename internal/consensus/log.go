package consensus

// Entry is one record of the replicated log. Index 1 is the first entry
// ever appended; a compacted prefix is summarised by the log's snapshot.
type Entry struct {
	// Index is the entry's position in the log, starting at 1.
	Index uint64
	// Term is the leader term the entry was appended under.
	Term uint64
	// Cmd is the opaque state-machine command. A nil Cmd is a no-op
	// barrier entry (appended by a new leader to commit its term).
	Cmd []byte
}

// raftLog is the in-memory replicated log with snapshot-based compaction.
// base/baseTerm describe the last entry folded into the snapshot; live
// entries follow at indexes base+1..base+len(entries). The zero value is an
// empty log with no snapshot.
type raftLog struct {
	base     uint64
	baseTerm uint64
	entries  []Entry
	snapshot []byte
}

// lastIndex returns the index of the last entry (snapshotted or live).
func (l *raftLog) lastIndex() uint64 { return l.base + uint64(len(l.entries)) }

// termAt returns the term of the entry at index i, or 0 when i is outside
// the log (before the snapshot base or past the last entry).
func (l *raftLog) termAt(i uint64) uint64 {
	switch {
	case i == l.base:
		return l.baseTerm
	case i < l.base || i > l.lastIndex():
		return 0
	default:
		return l.entries[i-l.base-1].Term
	}
}

// appendCmd appends a fresh command under term and returns its index.
func (l *raftLog) appendCmd(term uint64, cmd []byte) uint64 {
	idx := l.lastIndex() + 1
	l.entries = append(l.entries, Entry{Index: idx, Term: term, Cmd: cmd})
	return idx
}

// appendEntry appends a replicated entry that already carries its index,
// which must be lastIndex()+1.
func (l *raftLog) appendEntry(e Entry) { l.entries = append(l.entries, e) }

// truncateFrom drops every entry with index ≥ i (conflict repair).
// Indexes at or below the snapshot base are immutable and ignored.
func (l *raftLog) truncateFrom(i uint64) {
	if i <= l.base {
		i = l.base + 1
	}
	if n := int(i - l.base - 1); n < len(l.entries) {
		l.entries = l.entries[:n]
	}
}

// from returns a copy of all live entries with index ≥ i.
func (l *raftLog) from(i uint64) []Entry {
	if i <= l.base {
		i = l.base + 1
	}
	if i > l.lastIndex() {
		return nil
	}
	src := l.entries[i-l.base-1:]
	out := make([]Entry, len(src))
	copy(out, src)
	return out
}

// slice returns a copy of the entries in the inclusive index range [lo, hi].
func (l *raftLog) slice(lo, hi uint64) []Entry {
	if lo <= l.base {
		lo = l.base + 1
	}
	if hi > l.lastIndex() {
		hi = l.lastIndex()
	}
	if lo > hi {
		return nil
	}
	src := l.entries[lo-l.base-1 : hi-l.base]
	out := make([]Entry, len(src))
	copy(out, src)
	return out
}

// compact folds every entry up to and including index `to` into the given
// snapshot, keeping the live suffix.
func (l *raftLog) compact(to, term uint64, snap []byte) {
	if to <= l.base {
		return
	}
	keep := l.entries[to-l.base:]
	l.entries = append([]Entry(nil), keep...)
	l.base, l.baseTerm, l.snapshot = to, term, snap
}

// reset discards the whole log and replaces it with an installed snapshot.
func (l *raftLog) reset(base, term uint64, snap []byte) {
	l.base, l.baseTerm, l.snapshot = base, term, snap
	l.entries = nil
}
