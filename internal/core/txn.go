package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sdp/internal/netsim"
	"sdp/internal/obs"
	"sdp/internal/sqldb"
	"sdp/internal/wal"
)

// Txn is a distributed transaction managed by the cluster controller. Reads
// execute on one replica chosen by the read option; writes execute on all
// replicas; commit runs two-phase commit across the machines touched. A Txn
// must be used from a single goroutine, like a database connection.
type Txn struct {
	c     *Cluster
	db    string
	gid   uint64
	start time.Time // for the SLA monitor's commit-latency accounting

	sessions map[string]*replicaSession
	readHome string // Option 2's per-transaction read replica

	wrote    bool
	finished bool
	// rejected marks a transaction aborted by a proactive Algorithm 1
	// rejection, so the SLA monitor books it against the availability
	// bound instead of the inherent-abort tally.
	rejected bool

	// async tracks, in aggressive mode, writes whose remaining replicas
	// have not been confirmed yet. Before each subsequent operation the
	// already-resolved ones are checked; unresolved ones are left pending
	// and ultimately checked by the PREPARE votes.
	async []*future

	// trace is the distributed-tracing context this transaction's spans
	// (read routing, 2PC phases) parent under. The zero value disables
	// recording.
	trace obs.SpanContext
}

// SetTraceContext installs (or, with the zero value, clears) the trace
// context the transaction's core-layer spans parent under. The context is
// forwarded to every replica session — ordered behind any operations already
// enqueued there — so engine-side statement and WAL-flush spans join the
// same trace.
func (t *Txn) SetTraceContext(tc obs.SpanContext) {
	if t.trace == tc {
		return
	}
	t.trace = tc
	for _, s := range t.sessions {
		s.setTrace(tc)
	}
}

// recordSpan records one core-scope span under the transaction's context.
func (t *Txn) recordSpan(name, detail string, start time.Time) {
	t.c.metrics.reg.Spans().Record(obs.Span{
		TraceID:  t.trace.TraceID,
		SpanID:   obs.NewTraceID(),
		Parent:   t.trace.SpanID,
		Scope:    "core",
		Name:     name,
		DB:       t.db,
		Start:    start,
		Duration: time.Since(start),
		Detail:   detail,
	})
}

// GlobalID returns the controller-assigned global transaction ID.
func (t *Txn) GlobalID() uint64 { return t.gid }

// session returns (creating if needed) the replica session on machine id.
func (t *Txn) session(id string) (*replicaSession, error) {
	if s, ok := t.sessions[id]; ok {
		return s, nil
	}
	m, err := t.c.Machine(id)
	if err != nil {
		return nil, err
	}
	s, err := newReplicaSession(t.c, m, t.db, t.gid)
	if err != nil {
		return nil, err
	}
	if t.trace.Traced() {
		s.setTrace(t.trace)
	}
	t.sessions[id] = s
	return s, nil
}

// Exec parses and executes one statement, serving repeated statement text
// from the controller's shared statement cache. SELECT statements are routed
// to a single replica; all other statements execute on every replica of the
// database (read-one-write-all).
func (t *Txn) Exec(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	stmt, err := t.c.stmts.Parse(sql)
	if err != nil {
		return nil, err
	}
	return t.ExecStmt(stmt, params...)
}

// ExecStmt executes a pre-parsed statement.
func (t *Txn) ExecStmt(stmt sqldb.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	if t.finished {
		return nil, ErrTxnDone
	}
	if err := t.checkAsync(); err != nil {
		t.abort()
		return nil, err
	}
	switch s := stmt.(type) {
	case *sqldb.SelectStmt:
		return t.execRead(stmt, selectTables(s), params)
	case *sqldb.ExplainStmt:
		// EXPLAIN is a read: route it like the statement it describes.
		var tables []string
		if sel, ok := s.Inner.(*sqldb.SelectStmt); ok {
			tables = selectTables(sel)
		}
		return t.execRead(stmt, tables, params)
	case *sqldb.InsertStmt:
		return t.execWrite(stmt, s.Table, params)
	case *sqldb.UpdateStmt:
		return t.execWrite(stmt, s.Table, params)
	case *sqldb.DeleteStmt:
		return t.execWrite(stmt, s.Table, params)
	case *sqldb.CreateTableStmt:
		return t.execWrite(stmt, s.Table, params)
	case *sqldb.CreateIndexStmt:
		return t.execWrite(stmt, s.Table, params)
	case *sqldb.DropTableStmt:
		return t.execWrite(stmt, s.Table, params)
	case *sqldb.BeginStmt:
		return &sqldb.Result{}, nil // transactions are explicit in this API
	case *sqldb.CommitStmt:
		return &sqldb.Result{}, t.Commit()
	case *sqldb.RollbackStmt:
		return &sqldb.Result{}, t.Rollback()
	default:
		return nil, fmt.Errorf("core: unsupported statement %T", stmt)
	}
}

// checkAsync inspects resolved-but-unchecked asynchronous writes; a failure
// on any replica aborts the transaction, per the paper's aggressive
// controller ("subsequent operations of the transaction are aborted").
func (t *Txn) checkAsync() error {
	remaining := t.async[:0]
	var firstErr error
	for _, f := range t.async {
		if r, done := f.poll(); done {
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
		} else {
			remaining = append(remaining, f)
		}
	}
	t.async = remaining
	return firstErr
}

// execRead routes a read-only statement to one replica.
func (t *Txn) execRead(stmt sqldb.Statement, tables []string, params []sqldb.Value) (*sqldb.Result, error) {
	id, err := t.c.pickReadMachine(t, tables)
	if err != nil {
		t.abort()
		return nil, err
	}
	s, err := t.session(id)
	if err != nil {
		t.abort()
		return nil, err
	}
	traced := t.trace.Traced()
	var readStart time.Time
	if traced {
		readStart = time.Now()
	}
	r := s.execStmt(stmt, params).wait()
	if traced {
		t.recordSpan("read", "machine="+id, readStart)
	}
	if r.err != nil {
		t.abort()
		return nil, r.err
	}
	return r.res, nil
}

// execWrite routes a write to every replica, applying Algorithm 1 during
// replica creation, and acknowledges it per the controller's AckMode.
func (t *Txn) execWrite(stmt sqldb.Statement, table string, params []sqldb.Value) (*sqldb.Result, error) {
	targets, release, err := t.c.writeRoute(t.db, table)
	if err != nil {
		if IsRejection(err) {
			t.rejected = true
		}
		t.abort()
		return nil, err
	}
	t.wrote = true

	futs := make([]*future, 0, len(targets))
	for _, id := range targets {
		s, serr := t.session(id)
		if serr != nil {
			release()
			t.abort()
			return nil, serr
		}
		futs = append(futs, s.execStmt(stmt, params))
	}

	// The copy process may only proceed past this write once every replica
	// has executed it.
	go func(fs []*future) {
		for _, f := range fs {
			f.wait()
		}
		release()
	}(append([]*future{}, futs...))

	if t.c.opts.AckMode == Conservative {
		// Wait for all replicas; any failure aborts.
		var res *sqldb.Result
		var firstErr error
		for _, f := range futs {
			r := f.wait()
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
			if res == nil && r.res != nil {
				res = r.res
			}
		}
		if firstErr != nil {
			t.abort()
			return nil, firstErr
		}
		return res, nil
	}

	// Aggressive: return on the first replica's answer; remember the rest.
	r := waitAny(futs)
	t.async = append(t.async, futs...)
	if r.err != nil {
		t.abort()
		return nil, r.err
	}
	return r.res, nil
}

// Commit finishes the transaction. Read-only transactions commit in one
// phase on each replica they touched; transactions with writes run 2PC: the
// PREPARE action is enqueued on every session (behind any still-pending
// writes on that machine, but concurrently across machines) and the
// transaction commits only if every participant votes yes.
func (t *Txn) Commit() error {
	if t.finished {
		return ErrTxnDone
	}

	m := t.c.metrics
	if !t.wrote {
		var firstErr error
		for _, s := range t.sessions {
			r := s.commit().wait()
			if r.err == nil {
				continue
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if netsim.IsTransient(r.err) {
				// The one-phase commit never reached a live machine: its
				// branch still holds read locks. Re-deliver the release in
				// the background (as a rollback — equivalent for a branch
				// with no writes) so the locks cannot leak.
				m.twopcTimeout.With("commit1p").Inc()
				t.c.resolveOutcome(s, t.gid, false)
			}
		}
		t.cleanup()
		if firstErr != nil {
			m.aborted.Inc()
			t.c.slamon.ObserveAbort(t.db)
			return firstErr
		}
		m.committed.Inc()
		m.readonlyCommit.Inc()
		t.c.slamon.ObserveCommit(t.db, time.Since(t.start))
		if rec := t.c.opts.Recorder; rec != nil {
			rec.Commit(t.gid)
		}
		return nil
	}

	// Mirror the commit to the backup controller before issuing prepares.
	rec := t.c.pair.begin(t)
	gid := gidString(t.gid)

	// Phase 1: prepare everywhere, concurrently.
	m.prepareTotal.Inc()
	if t.c.opts.AckMode == Aggressive && t.c.opts.ReadOption != ReadOption1 &&
		t.c.opts.EngineConfig.ReleaseReadLocksAtPrepare {
		// The exact combination the paper proves non-serializable (Table
		// 1): read locks dropped at PREPARE while reads are routed per
		// transaction or per operation under an aggressive controller.
		m.unsafePrepare.Inc()
	}
	m.reg.TraceEvent("2pc", gid, "prepare", fmt.Sprintf("%d participants", len(t.sessions)))
	prepStart := time.Now()
	votes := make(map[string]*future, len(t.sessions))
	for id, s := range t.sessions {
		votes[id] = s.prepare()
	}
	// Collect votes under the per-call deadline. A missing vote is a NO by
	// the presumed-abort rule: the coordinator logs nothing for aborts, so
	// deciding abort on a timeout is always safe — a participant that did
	// prepare will be rolled back by the abort phase (or, if it crashed, by
	// restart-time presumed abort).
	deadline := t.c.opts.CallTimeout
	var voteErr error
	timedOut := false
	for _, f := range votes {
		r, ok := f.waitTimeout(deadline)
		if !ok {
			timedOut = true
			m.twopcTimeout.With("prepare").Inc()
			if voteErr == nil {
				voteErr = ErrPrepareTimeout
			}
			continue
		}
		if r.err != nil && voteErr == nil {
			voteErr = r.err
		}
	}
	m.prepareSeconds.ObserveDuration(time.Since(prepStart))
	if t.trace.Traced() {
		t.recordSpan("2pc_prepare", fmt.Sprintf("%d participants", len(t.sessions)), prepStart)
	}
	if t.c.pair.crashed(StagePreparing, t.gid) {
		// Primary controller died before the commit decision; the backup's
		// TakeOver will roll this transaction back.
		t.finished = true
		t.c.pair.park(rec)
		return ErrMachineFailed
	}
	if voteErr != nil {
		// Phase 2 (abort): roll everyone back.
		m.voteNoTotal.Inc()
		if timedOut {
			m.presumedAbort.Inc()
			m.reg.TraceEvent("2pc", gid, "presumed_abort", voteErr.Error())
		}
		m.reg.TraceEvent("2pc", gid, "abort", voteErr.Error())
		t.c.pair.finish(rec)
		t.rollbackAll()
		t.cleanup()
		m.aborted.Inc()
		t.c.slamon.ObserveAbort(t.db)
		return fmt.Errorf("core: transaction aborted by 2PC: %w", voteErr)
	}

	// Commit decision reached: mirror it, then run phase 2.
	t.c.pair.advance(rec, StageCommitting)
	if t.c.pair.crashed(StageCommitting, t.gid) {
		// Primary died after the decision; TakeOver completes the commit.
		t.finished = true
		t.c.pair.park(rec)
		return ErrMachineFailed
	}

	// Phase 2 (commit).
	commitStart := time.Now()
	var commitSpanID uint64
	if t.trace.Traced() {
		// Re-point the replica branches at the commit span before the
		// decision goes out, so each engine's WAL-flush span parents under
		// the 2PC commit phase rather than the last statement.
		commitSpanID = obs.NewTraceID()
		ctc := obs.SpanContext{TraceID: t.trace.TraceID, SpanID: commitSpanID, Sampled: true}
		for _, s := range t.sessions {
			s.setTrace(ctc)
		}
	}
	commits := make(map[string]*future, len(t.sessions))
	for id, s := range t.sessions {
		commits[id] = s.commitPrepared()
	}
	for id, f := range commits {
		// A machine that dies between prepare and commit is repaired by
		// recovery (re-replication), not by blocking the commit. A live
		// machine whose commit delivery failed on network faults keeps a
		// prepared branch holding locks — hand it to a background resolver
		// that re-delivers the decision until it lands.
		r := f.wait()
		if r.err != nil && netsim.IsTransient(r.err) {
			m.twopcTimeout.With("commit").Inc()
			t.c.resolveOutcome(t.sessions[id], t.gid, true)
		}
	}
	m.commitSeconds.ObserveDuration(time.Since(commitStart))
	if t.trace.Traced() {
		t.c.metrics.reg.Spans().Record(obs.Span{
			TraceID:  t.trace.TraceID,
			SpanID:   commitSpanID,
			Parent:   t.trace.SpanID,
			Scope:    "core",
			Name:     "2pc_commit",
			DB:       t.db,
			Start:    commitStart,
			Duration: time.Since(commitStart),
		})
	}
	m.reg.TraceEvent("2pc", gid, "commit", "")
	t.c.pair.finish(rec)
	t.cleanup()
	m.committed.Inc()
	t.c.slamon.ObserveCommit(t.db, time.Since(t.start))
	if rec := t.c.opts.Recorder; rec != nil {
		rec.Commit(t.gid)
	}
	return nil
}

// Rollback aborts the transaction on every replica it touched.
func (t *Txn) Rollback() error {
	if t.finished {
		return ErrTxnDone
	}
	t.abort()
	return nil
}

// abort rolls back every session and finishes the transaction. The guard on
// finished makes the abort counter exact: no matter how many error paths
// converge here (failed read, failed write, rejected route, explicit
// Rollback after an error), a transaction is counted aborted at most once.
// The SLA monitor sees the same exactly-once outcome, booked as a rejection
// when a proactive Algorithm 1 rejection caused the abort.
func (t *Txn) abort() {
	if t.finished {
		return
	}
	t.rollbackAll()
	t.cleanup()
	t.c.metrics.aborted.Inc()
	if t.rejected {
		t.c.slamon.ObserveReject(t.db)
	} else {
		t.c.slamon.ObserveAbort(t.db)
	}
}

func (t *Txn) rollbackAll() {
	var wg sync.WaitGroup
	for _, s := range t.sessions {
		wg.Add(1)
		go func(s *replicaSession, f *future) {
			defer wg.Done()
			r := f.wait()
			if r.err != nil && netsim.IsTransient(r.err) {
				// The abort decision must still reach this participant or
				// its prepared/active branch would hold locks forever.
				t.c.resolveOutcome(s, t.gid, false)
			}
		}(s, s.rollback())
	}
	wg.Wait()
}

// cleanup closes all sessions and marks the transaction finished.
func (t *Txn) cleanup() {
	for _, s := range t.sessions {
		s.close()
	}
	t.finished = true
}

// IsRejection reports whether err is a proactive rejection (Algorithm 1).
func IsRejection(err error) bool { return errors.Is(err, ErrRejected) }

// IsRetryable reports whether the error is transient from the client's
// perspective: deadlock victim, lock timeout, rejection during copy, a
// machine failure mid-transaction, a branch abort surfacing through a 2PC
// vote (the aggressive controller learns of an asynchronous write failure
// only when the prepare vote comes back), a controller failover in progress
// (not-leader redirects and quorum loss heal once a leader re-emerges), or
// any simulated-network fault — dropped or delayed messages, lost replies,
// partitioned or timed-out calls all abort the transaction cleanly and
// invite a retry. A sealed log is the same story as a failed machine: the
// statement was in flight when the machine crashed and discovered it only
// at its next log append.
func IsRetryable(err error) bool {
	return errors.Is(err, sqldb.ErrDeadlock) ||
		errors.Is(err, sqldb.ErrLockTimeout) ||
		errors.Is(err, sqldb.ErrTxnAborted) ||
		errors.Is(err, ErrRejected) ||
		errors.Is(err, ErrMachineFailed) ||
		errors.Is(err, wal.ErrSealed) ||
		errors.Is(err, ErrPrepareTimeout) ||
		errors.Is(err, ErrUnreachable) ||
		errors.Is(err, ErrStaleRoute) ||
		errors.Is(err, ErrNotLeader) ||
		errors.Is(err, ErrNoQuorum) ||
		netsim.IsTransient(err)
}
