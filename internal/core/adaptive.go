package core

import (
	"errors"
	"sync"
	"time"

	"sdp/internal/obs"
	"sdp/internal/placement"
	"sdp/internal/sla"
)

// This file closes the loop from the SLA monitor into placement: a periodic
// decision loop samples the monitor's per-database windows, classifies
// tenants hot/warm/cold (internal/placement), grows hot tenants' replica
// degree and shrinks cold ones within a per-tenant budget, and corrects
// load skew through the shared rebalancer candidate path (rebalance.go).
// Decisions execute through the same replicated control-plane primitives as
// manual operations (GrowReplica → Algorithm 1 copy, ShrinkReplica →
// replicated retire, MigrateReplica), so they survive controller failover;
// the loop itself only acts while its controller holds the quorum lease,
// and every action is level-triggered — an action lost to ErrNotLeader or
// ErrNoQuorum is simply re-planned by the next leader's next round from
// fresh signals.

// AdaptiveConfig tunes the adaptive provisioning controller.
type AdaptiveConfig struct {
	// Interval is the decision-loop period. Zero selects 500ms. Rounds
	// re-plan from scratch, so the interval bounds reaction time, not
	// correctness.
	Interval time.Duration
	// Classifier tunes the hot/warm/cold thresholds.
	Classifier placement.ClassifierConfig
	// Budget bounds per-tenant replica degrees (TCDRM-style).
	Budget placement.Budget
	// MaxConcurrentMoves caps Algorithm 1 copies in flight from this
	// controller (K in the issue); actions beyond it wait for the next
	// round. Zero selects 2.
	MaxConcurrentMoves int
	// MaxActionsPerRound caps grow/shrink actions planned per round.
	// Zero selects 4.
	MaxActionsPerRound int
	// RebalanceMoves caps skew-correcting migrations per round. Zero
	// selects 1; negative disables migration.
	RebalanceMoves int
	// RebalanceMinGain is the relative peak-utilisation reduction a
	// skew-correcting migration must achieve before the loop launches it.
	// Observed loads jitter window to window; without a margin the
	// rebalancer chases the noise, ping-ponging replicas between
	// near-equal machines (each move an Algorithm 1 copy that costs real
	// latency). Zero selects 0.1 (a move must cut the peak by 10%);
	// negative selects any strict improvement, the manual Rebalance
	// semantics.
	RebalanceMinGain float64
	// LoadSmoothing is the EWMA coefficient applied to observed per-replica
	// loads across rounds (new = α·observed + (1−α)·previous). One SLA
	// window is a noisy throughput sample; smoothing is what lets the
	// migration planner see the persistent skew through the jitter. Zero
	// selects 0.3; values ≥ 1 disable smoothing.
	LoadSmoothing float64
}

func (cfg AdaptiveConfig) withDefaults() AdaptiveConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.MaxConcurrentMoves <= 0 {
		cfg.MaxConcurrentMoves = 2
	}
	if cfg.MaxActionsPerRound <= 0 {
		cfg.MaxActionsPerRound = 4
	}
	if cfg.RebalanceMoves == 0 {
		cfg.RebalanceMoves = 1
	}
	if cfg.RebalanceMinGain == 0 {
		cfg.RebalanceMinGain = 0.1
	} else if cfg.RebalanceMinGain < 0 {
		cfg.RebalanceMinGain = 0
	}
	if cfg.LoadSmoothing <= 0 {
		cfg.LoadSmoothing = 0.3
	} else if cfg.LoadSmoothing > 1 {
		cfg.LoadSmoothing = 1
	}
	return cfg
}

// placementMetrics carries the adaptive controller's instruments, resolved
// once at construction like clusterMetrics.
type placementMetrics struct {
	rounds   *obs.CounterVec
	actions  *obs.CounterVec
	tenants  *obs.GaugeVec
	inflight *obs.Gauge
}

func newPlacementMetrics(reg *obs.Registry) *placementMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &placementMetrics{
		rounds: reg.CounterVec("placement_rounds_total",
			"Adaptive placement decision rounds by result (acted, noop, skipped_not_leader).", "result"),
		actions: reg.CounterVec("placement_actions_total",
			"Adaptive placement actions by kind (grow, shrink, migrate) and result (ok, retry, error).", "kind", "result"),
		tenants: reg.GaugeVec("placement_tenants",
			"Tenants by hot/warm/cold class as of the last decision round.", "class"),
		inflight: reg.Gauge("placement_moves_inflight",
			"Replica copies and retires currently executing on behalf of the adaptive controller."),
	}
}

// AdaptiveController runs the adaptive provisioning loop for one cluster.
// Create it with NewAdaptiveController, then Start it; Stop waits for the
// loop and any in-flight actions to finish.
type AdaptiveController struct {
	c       *Cluster
	cfg     AdaptiveConfig
	metrics *placementMetrics

	sem     chan struct{} // MaxConcurrentMoves tokens
	stopCh  chan struct{}
	started bool
	stopped bool
	loopWG  sync.WaitGroup
	moveWG  sync.WaitGroup

	// loadEWMA is the smoothed per-replica observed load carried across
	// rounds (accessed only from the decision loop / RunOnce callers).
	loadEWMA map[string]sla.Resources
	// pendingMove is last round's planned-but-unconfirmed migration: a
	// skew-correcting move only launches when two consecutive rounds plan
	// the identical move, so a single noisy load sample never triggers an
	// Algorithm 1 copy. Same access discipline as loadEWMA.
	pendingMove Move

	mu               sync.Mutex
	rounds           uint64
	skippedNotLeader uint64
	grows            uint64
	shrinks          uint64
	migrates         uint64
	tenants          []placement.TenantStatus
	recent           []placement.ActionRecord
}

// NewAdaptiveController builds an adaptive provisioning controller for the
// cluster, registering its placement_* metrics on the cluster's registry.
// The cluster must have been built with Options.SLAMonitor for hot/cold
// classification to see any signals; without a monitor the loop still
// repairs replica degrees against the budget and corrects declared-load
// skew.
func (c *Cluster) NewAdaptiveController(cfg AdaptiveConfig) *AdaptiveController {
	cfg = cfg.withDefaults()
	return &AdaptiveController{
		c:        c,
		cfg:      cfg,
		metrics:  newPlacementMetrics(c.metrics.reg),
		sem:      make(chan struct{}, cfg.MaxConcurrentMoves),
		stopCh:   make(chan struct{}),
		loadEWMA: map[string]sla.Resources{},
	}
}

// Start launches the periodic decision loop. Safe to call once.
func (a *AdaptiveController) Start() {
	a.mu.Lock()
	if a.started || a.stopped {
		a.mu.Unlock()
		return
	}
	a.started = true
	a.mu.Unlock()
	a.loopWG.Add(1)
	go func() {
		defer a.loopWG.Done()
		ticker := time.NewTicker(a.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-a.stopCh:
				return
			case <-ticker.C:
				a.RunOnce()
			}
		}
	}()
}

// Stop halts the loop and waits for in-flight actions. Idempotent.
func (a *AdaptiveController) Stop() {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	a.mu.Unlock()
	close(a.stopCh)
	a.loopWG.Wait()
	a.moveWG.Wait()
}

// WaitIdle blocks until every action launched by previous rounds has
// finished executing — for tests that drive RunOnce directly.
func (a *AdaptiveController) WaitIdle() { a.moveWG.Wait() }

// RunOnce executes one decision round synchronously (the planning; action
// execution is handed to bounded workers) and returns the number of
// actions launched. Rounds on a controller that does not hold the quorum
// lease are skipped: only the leader acts, followers count the skip and
// stand by — after failover the new leader's loop takes over seamlessly
// because every prior action was replicated.
func (a *AdaptiveController) RunOnce() int {
	if cp := a.c.ctl; cp != nil && !cp.leaseOK() {
		a.mu.Lock()
		a.skippedNotLeader++
		a.mu.Unlock()
		a.metrics.rounds.With("skipped_not_leader").Inc()
		return 0
	}

	tenants, machines, loads := a.c.placementView(a.loadEWMA, a.cfg.LoadSmoothing)
	a.loadEWMA = loads
	res := placement.Plan(tenants, machines, placement.PlanConfig{
		Classifier: a.cfg.Classifier,
		Budget:     a.cfg.Budget,
		MaxActions: a.cfg.MaxActionsPerRound,
	})
	a.publishRound(tenants, res)

	launched := 0
	for _, act := range res.Actions {
		if a.launch(act) {
			launched++
		}
	}
	if a.cfg.RebalanceMoves > 0 && launched == 0 && len(a.sem) == 0 {
		// Degree changes settle first, and skew correction runs only on
		// fully quiet rounds (nothing planned, nothing in flight), so a
		// grow and a migration never chase the same hotspot and copies
		// never stack up behind each other. A move must also be planned
		// identically by two consecutive rounds before it launches.
		move, ok := a.c.planMove(loads, a.cfg.RebalanceMinGain)
		switch {
		case ok && move == a.pendingMove:
			if a.launch(placement.Action{Kind: placement.Migrate, DB: move.DB, From: move.From, To: move.To, Reason: "skew: peak improvement confirmed twice"}) {
				launched++
				a.pendingMove = Move{}
			}
		case ok:
			a.pendingMove = move
		default:
			a.pendingMove = Move{}
		}
	}
	if launched > 0 {
		a.metrics.rounds.With("acted").Inc()
	} else {
		a.metrics.rounds.With("noop").Inc()
	}
	return launched
}

// launch hands one action to a bounded worker; it reports false when every
// worker slot is busy (the action is dropped and re-planned next round).
func (a *AdaptiveController) launch(act placement.Action) bool {
	select {
	case a.sem <- struct{}{}:
	default:
		return false
	}
	a.moveWG.Add(1)
	a.metrics.inflight.Inc()
	go func() {
		defer func() {
			a.metrics.inflight.Dec()
			<-a.sem
			a.moveWG.Done()
		}()
		a.execute(act)
	}()
	return true
}

// execute performs one action through the cluster's replicated primitives
// and records the outcome.
func (a *AdaptiveController) execute(act placement.Action) {
	var err error
	switch act.Kind {
	case placement.Grow:
		err = a.c.GrowReplica(act.DB, act.To)
	case placement.Shrink:
		err = a.c.ShrinkReplica(act.DB, act.From)
	case placement.Migrate:
		err = a.c.MigrateReplica(act.DB, act.From, act.To)
	}
	result := "ok"
	switch {
	case err == nil:
	case errors.Is(err, ErrNotLeader), errors.Is(err, ErrNoQuorum),
		errors.Is(err, ErrCopyInProgress), errors.Is(err, ErrCopyAborted),
		errors.Is(err, ErrMachineFailed), errors.Is(err, ErrNoCapacity):
		// Transient cluster churn: leadership moved, a copy raced ours,
		// or a machine died under the move. Level-triggered recovery —
		// the next round re-plans from fresh state.
		result = "retry"
	default:
		result = "error"
	}
	a.metrics.actions.With(string(act.Kind), result).Inc()

	rec := placement.ActionRecord{Action: act, At: time.Now()}
	if err != nil {
		rec.Err = err.Error()
	}
	a.mu.Lock()
	switch act.Kind {
	case placement.Grow:
		if err == nil {
			a.grows++
		}
	case placement.Shrink:
		if err == nil {
			a.shrinks++
		}
	case placement.Migrate:
		if err == nil {
			a.migrates++
		}
	}
	a.recent = append(a.recent, rec)
	if len(a.recent) > 32 {
		a.recent = a.recent[len(a.recent)-32:]
	}
	a.mu.Unlock()
}

// publishRound updates the per-round report state and class gauges.
func (a *AdaptiveController) publishRound(tenants []placement.TenantView, res placement.PlanResult) {
	counts := map[placement.Class]int{}
	statuses := make([]placement.TenantStatus, 0, len(tenants))
	for _, t := range tenants {
		class := res.Classes[t.Signal.DB]
		counts[class]++
		statuses = append(statuses, placement.TenantStatus{
			DB:         t.Signal.DB,
			Class:      class.String(),
			Replicas:   len(t.Replicas),
			Target:     res.Targets[t.Signal.DB],
			Compliant:  t.Signal.Compliant,
			OfferedTPS: t.Signal.OfferedTPS(),
		})
	}
	for _, class := range []placement.Class{placement.Hot, placement.Warm, placement.Cold} {
		a.metrics.tenants.With(class.String()).Set(float64(counts[class]))
	}
	a.mu.Lock()
	a.rounds++
	a.tenants = statuses
	a.mu.Unlock()
}

// Actions returns the cumulative successful grow/shrink/migrate counts.
func (a *AdaptiveController) Actions() (grows, shrinks, migrates uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.grows, a.shrinks, a.migrates
}

// Report assembles the controller's public state for /placementz.
func (a *AdaptiveController) Report() placement.Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return placement.Report{
		GeneratedAt:      time.Now(),
		Enabled:          a.started && !a.stopped,
		Rounds:           a.rounds,
		SkippedNotLeader: a.skippedNotLeader,
		MovesInFlight:    len(a.sem),
		Tenants:          append([]placement.TenantStatus(nil), a.tenants...),
		Recent:           append([]placement.ActionRecord(nil), a.recent...),
	}
}

// placementView samples the cluster into the planner's input: one
// TenantView per database (SLA signals where the monitor tracks them), one
// MachineView per live machine with effective utilisation, plus the
// observed per-replica load map shared with the rebalancer. prev and alpha
// EWMA-smooth the observed loads across calls (alpha 1 takes the raw
// sample); the returned map is the new smoothed state.
func (c *Cluster) placementView(prev map[string]sla.Resources, alpha float64) ([]placement.TenantView, []placement.MachineView, map[string]sla.Resources) {
	// Sample the monitor outside c.mu (it has its own locking).
	signals := map[string]placement.TenantSignal{}
	loads := map[string]sla.Resources{}
	if c.slamon != nil {
		rep := c.slamon.Report()
		for _, db := range rep.Databases {
			sig := placement.TenantSignal{
				DB:            db.Database,
				SLA:           db.SLA,
				Compliant:     db.Compliant,
				WindowSeconds: rep.WindowSeconds,
				Violation:     db.LastViolation,
			}
			if db.LastWindow != nil {
				sig.HasWindow = true
				sig.Window = *db.LastWindow
			}
			signals[db.Database] = sig
		}
	}

	c.mu.Lock()
	cands := c.movementCandidatesLocked(nil)
	// Observed per-replica load: profile the last window's committed TPS
	// share across the replicas, so skew math chases traffic, not
	// reservations, EWMA-blended with the previous round's estimate — one
	// window is a noisy sample. Computed before effective loads so both
	// views agree.
	for _, cand := range cands {
		est, hasPrev := prev[cand.db]
		sig, ok := signals[cand.db]
		if ok && sig.HasWindow && sig.Window.TPS > 0 && len(cand.replicas) > 0 {
			raw := sla.Profile(0, sig.Window.TPS/float64(len(cand.replicas)))
			if hasPrev {
				est = est.Scale(1 - alpha).Add(raw.Scale(alpha))
			} else {
				est = raw
			}
		}
		if est != (sla.Resources{}) {
			loads[cand.db] = est
		}
	}
	cands = c.movementCandidatesLocked(loads)
	eff := c.effectiveLoadsLocked(cands)

	tenants := make([]placement.TenantView, 0, len(cands))
	for _, cand := range cands {
		sig, ok := signals[cand.db]
		if !ok {
			// Untracked database: no SLA evidence, so the classifier
			// holds it warm and only budget repair / skew moves apply.
			sig = placement.TenantSignal{DB: cand.db}
		}
		tenants = append(tenants, placement.TenantView{
			Signal:   sig,
			Replicas: cand.replicas,
			Copying:  cand.copying,
		})
	}

	machines := make([]placement.MachineView, 0, len(eff))
	for _, id := range c.order {
		m := c.machines[id]
		if m == nil || m.Failed() {
			continue
		}
		mv := placement.MachineView{ID: id, Util: utilOf(eff[id], m.Capacity()), Hosts: map[string]bool{}}
		for _, cand := range cands {
			if contains(cand.replicas, id) {
				mv.Hosts[cand.db] = true
			}
		}
		machines = append(machines, mv)
	}
	c.mu.Unlock()
	return tenants, machines, loads
}
