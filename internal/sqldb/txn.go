package sqldb

import (
	"fmt"
	"sync"
)

// TxnState is the lifecycle state of a transaction.
type TxnState int

// Transaction states. A transaction moves Active → (Prepared →) Committed,
// or to Aborted from Active/Prepared.
const (
	TxnActive TxnState = iota
	TxnPrepared
	TxnCommitted
	TxnAborted
)

// String returns the state name.
func (s TxnState) String() string {
	switch s {
	case TxnActive:
		return "active"
	case TxnPrepared:
		return "prepared"
	case TxnCommitted:
		return "committed"
	case TxnAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// undoKind classifies undo records.
type undoKind int

const (
	undoInsert undoKind = iota // row was inserted; undo deletes it
	undoDelete                 // row was deleted; undo reinserts it
	undoUpdate                 // row was updated; undo restores the image
)

// undoRec is one entry of a transaction's undo log.
type undoRec struct {
	table  *Table
	kind   undoKind
	rowID  uint64
	before Row
}

// Txn is a transaction on a single engine. It implements strict two-phase
// locking (locks held until commit/abort) and acts as a 2PC participant via
// Prepare/CommitPrepared. A Txn must not be used from multiple goroutines
// concurrently, matching the behaviour of a MySQL connection.
type Txn struct {
	// GlobalID is an optional caller-assigned identity. The cluster
	// controller assigns the same GlobalID to a distributed transaction's
	// branches on every replica so that history checking can correlate them.
	GlobalID uint64

	id     uint64
	engine *Engine
	db     string // database namespace this transaction operates in

	mu    sync.Mutex
	state TxnState
	undo  []undoRec

	// walBegun records that the transaction's begin record (and at least one
	// statement) was logged, so commit/prepare must force an outcome record.
	// Only the transaction's own goroutine touches it.
	walBegun bool

	// locks is guarded by the engine's lock-manager mutex, not mu: all
	// mutation happens inside lockManager methods. The manager appends an
	// id exactly once per hold (on first grant; upgrades do not re-append),
	// so the slice stays duplicate-free without a set. locksBuf keeps short
	// transactions — the common point read/write — allocation-free.
	locks    []lockID
	locksBuf [8]lockID
}

// ID returns the engine-local transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// State returns the current lifecycle state.
func (t *Txn) State() TxnState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// noteLock records that the transaction holds id. Called by the lock manager
// with its mutex held, only when the transaction is newly granted the lock
// (never on upgrades of an already-held lock).
func (t *Txn) noteLock(id lockID) { t.locks = append(t.locks, id) }

// heldLocks lists the held lock IDs. Called by the lock manager with its
// mutex held.
func (t *Txn) heldLocks() []lockID { return t.locks }

// logUndo appends an undo record.
func (t *Txn) logUndo(rec undoRec) {
	t.mu.Lock()
	t.undo = append(t.undo, rec)
	t.mu.Unlock()
}

// checkActive returns an error unless the transaction can accept data
// operations.
func (t *Txn) checkActive() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.state {
	case TxnActive:
		return nil
	case TxnPrepared:
		return ErrTxnPrepared
	case TxnCommitted:
		return ErrTxnDone
	default:
		return ErrTxnAborted
	}
}

// Exec parses and executes a statement inside the transaction, serving
// repeated statement text from the engine's plan cache. Params bind to ?
// placeholders in order; parameterised statements share one cached plan
// across all bindings.
func (t *Txn) Exec(sql string, params ...Value) (*Result, error) {
	stmt, plan, err := t.engine.cachedStatement(t.db, sql)
	if err != nil {
		return nil, err
	}
	return t.execPlanned(stmt, plan, params)
}

// ExecStmt executes a pre-parsed statement inside the transaction, memoising
// its access-path plan by AST identity.
func (t *Txn) ExecStmt(stmt Statement, params ...Value) (*Result, error) {
	return t.execPlanned(stmt, t.engine.plannedStmt(t.db, stmt), params)
}

func (t *Txn) execPlanned(stmt Statement, plan *stmtPlan, params []Value) (*Result, error) {
	if err := t.checkActive(); err != nil {
		return nil, err
	}
	if !t.engine.HasDatabase(t.db) {
		// The database was dropped underneath the transaction (e.g. an
		// aborted replica copy discarding its half-copied destination while
		// branches were still routed there). The branch cannot proceed:
		// abort it so the client sees a retryable abort rather than a
		// missing-schema error.
		t.rollbackLocked()
		return nil, fmt.Errorf("%w: database %s was dropped", ErrTxnAborted, t.db)
	}
	res, err := t.engine.execute(t, stmt, plan, params)
	if err != nil && isAbortError(err) {
		// Deadlock victims and lock-wait timeouts roll the whole
		// transaction back, as InnoDB does for deadlocks.
		t.rollbackLocked()
	}
	return res, err
}

// isAbortError reports whether the error forces a transaction rollback.
func isAbortError(err error) bool {
	return err == ErrDeadlock || err == ErrLockTimeout || err == ErrTxnAborted
}

// Prepare enters the PREPARED state of two-phase commit: the transaction can
// no longer execute operations, its effects are stable, and — when the
// engine's ReleaseReadLocksAtPrepare optimisation is on, as in most real
// systems — its read locks are released while write locks are retained until
// CommitPrepared. Prepare on a read-only transaction is permitted.
func (t *Txn) Prepare() error {
	t.mu.Lock()
	if t.state != TxnActive {
		st := t.state
		t.mu.Unlock()
		switch st {
		case TxnPrepared:
			return nil
		case TxnCommitted:
			return ErrTxnDone
		default:
			return ErrTxnAborted
		}
	}
	t.state = TxnPrepared
	t.mu.Unlock()
	// The prepare record is forced before any lock moves: an in-doubt
	// transaction must survive a crash with its writes intact.
	if err := t.engine.walPrepare(t); err != nil {
		t.rollbackLocked()
		return err
	}
	if t.engine.cfg.ReleaseReadLocksAtPrepare {
		t.engine.locks.releaseShared(t)
	}
	return nil
}

// CommitPrepared completes the second phase of 2PC, making the transaction's
// effects permanent and releasing all remaining locks.
func (t *Txn) CommitPrepared() error {
	t.mu.Lock()
	if t.state != TxnPrepared {
		st := t.state
		t.mu.Unlock()
		switch st {
		case TxnCommitted:
			return ErrTxnDone
		case TxnAborted:
			return ErrTxnAborted
		default:
			return ErrNotPrepared
		}
	}
	t.mu.Unlock()
	// Force the commit record before releasing any lock (write-ahead rule);
	// if the log is failing the transaction rolls back instead.
	if err := t.engine.walCommit(t); err != nil {
		t.rollbackLocked()
		return err
	}
	t.mu.Lock()
	t.state = TxnCommitted
	t.undo = nil
	t.mu.Unlock()
	t.engine.locks.releaseAll(t)
	t.engine.finishTxn(t, true)
	return nil
}

// Commit performs a one-phase commit (prepare + commit). It is what a plain
// COMMIT on a single machine does.
func (t *Txn) Commit() error {
	t.mu.Lock()
	switch t.state {
	case TxnActive, TxnPrepared:
		t.mu.Unlock()
		// Force the commit record before releasing any lock (write-ahead
		// rule); if the log is failing the transaction rolls back instead.
		if err := t.engine.walCommit(t); err != nil {
			t.rollbackLocked()
			return err
		}
		t.mu.Lock()
		t.state = TxnCommitted
		t.undo = nil
		t.mu.Unlock()
		t.engine.locks.releaseAll(t)
		t.engine.finishTxn(t, true)
		return nil
	case TxnCommitted:
		t.mu.Unlock()
		return ErrTxnDone
	default:
		t.mu.Unlock()
		return ErrTxnAborted
	}
}

// Rollback aborts the transaction, undoing all of its effects and releasing
// its locks. Rolling back an already-finished transaction is an error except
// for the already-aborted case, which is a no-op (deadlock victims arrive
// here pre-aborted).
func (t *Txn) Rollback() error {
	t.mu.Lock()
	if t.state == TxnCommitted {
		t.mu.Unlock()
		return ErrTxnDone
	}
	if t.state == TxnAborted {
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	t.rollbackLocked()
	return nil
}

// rollbackLocked applies the undo log in reverse and releases locks.
func (t *Txn) rollbackLocked() {
	t.mu.Lock()
	if t.state == TxnAborted || t.state == TxnCommitted {
		t.mu.Unlock()
		return
	}
	t.state = TxnAborted
	undo := t.undo
	t.undo = nil
	t.mu.Unlock()
	t.engine.walAbort(t)

	for i := len(undo) - 1; i >= 0; i-- {
		rec := undo[i]
		switch rec.kind {
		case undoInsert:
			rec.table.deleteRowPhysical(rec.rowID)
		case undoDelete:
			rec.table.insertRowPhysical(rec.rowID, rec.before)
		case undoUpdate:
			rec.table.updateRowPhysical(rec.rowID, rec.before)
		}
	}
	t.engine.locks.releaseAll(t)
	t.engine.finishTxn(t, false)
}

// String identifies the transaction for diagnostics.
func (t *Txn) String() string {
	return fmt.Sprintf("txn(%d)", t.id)
}
