package sdp

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md. Each
// bench runs the corresponding experiment at reduced (Quick) scale and
// reports the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every evaluation artefact's shape. cmd/experiments runs the
// same code at full scale and prints the paper-style tables.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdp/internal/history"

	"sdp/internal/core"
	"sdp/internal/experiments"
	"sdp/internal/sla"
	"sdp/internal/sqldb"
	"sdp/internal/tpcw"
	"sdp/internal/workload"
)

func benchCfg() experiments.Config { return experiments.Config{Quick: true, Seed: 42} }

// BenchmarkTable1Serializability regenerates Table 1: the number of
// serializability violations per cell of (read option) x (ack mode).
func BenchmarkTable1Serializability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable1(benchCfg())
		var aggressive23, others int
		for _, cell := range res.Cells {
			if cell.Mode == core.Aggressive && cell.Option != core.ReadOption1 {
				aggressive23 += cell.Violations
			} else {
				others += cell.Violations
			}
		}
		b.ReportMetric(float64(aggressive23), "violations-aggressive-opt23")
		b.ReportMetric(float64(others), "violations-other-cells")
	}
}

// throughputBench runs one of Figures 2–4 and reports the TPS of each
// series at the highest measured concurrency.
func throughputBench(b *testing.B, mix tpcw.Mix) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunThroughput(mix, benchCfg())
		for _, name := range res.Order {
			pts := res.Series[name]
			b.ReportMetric(pts[len(pts)-1].TPS, "tps-"+name)
		}
	}
}

// BenchmarkFig2ShoppingThroughput regenerates Figure 2.
func BenchmarkFig2ShoppingThroughput(b *testing.B) { throughputBench(b, tpcw.ShoppingMix) }

// BenchmarkFig3BrowsingThroughput regenerates Figure 3.
func BenchmarkFig3BrowsingThroughput(b *testing.B) { throughputBench(b, tpcw.BrowsingMix) }

// BenchmarkFig4OrderingThroughput regenerates Figure 4.
func BenchmarkFig4OrderingThroughput(b *testing.B) { throughputBench(b, tpcw.OrderingMix) }

// deadlockBench runs one of Figures 5–7 and reports each option's deadlock
// rate at the largest database size.
func deadlockBench(b *testing.B, mix tpcw.Mix) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunDeadlocks(mix, benchCfg())
		for _, name := range res.Order {
			pts := res.Series[name]
			b.ReportMetric(pts[len(pts)-1].Rate, "deadlocks-per-1k-"+name)
		}
	}
}

// BenchmarkFig5DeadlocksShopping regenerates Figure 5.
func BenchmarkFig5DeadlocksShopping(b *testing.B) { deadlockBench(b, tpcw.ShoppingMix) }

// BenchmarkFig6DeadlocksBrowsing regenerates Figure 6.
func BenchmarkFig6DeadlocksBrowsing(b *testing.B) { deadlockBench(b, tpcw.BrowsingMix) }

// BenchmarkFig7DeadlocksOrdering regenerates Figure 7.
func BenchmarkFig7DeadlocksOrdering(b *testing.B) { deadlockBench(b, tpcw.OrderingMix) }

// BenchmarkFig8RejectedDuringRecovery regenerates Figure 8: proactively
// rejected transactions per recovering database, database- vs table-level
// copying.
func BenchmarkFig8RejectedDuringRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunRecovery(benchCfg())
		for _, name := range res.Order {
			pts := res.Series[name]
			b.ReportMetric(pts[0].RejectedPerDB, "rejected-per-db-"+name)
		}
	}
}

// BenchmarkFig9ThroughputDuringRecovery regenerates Figure 9: throughput
// during the recovery window for both copy granularities.
func BenchmarkFig9ThroughputDuringRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunRecovery(benchCfg())
		for _, name := range res.Order {
			pts := res.Series[name]
			b.ReportMetric(pts[len(pts)-1].TPSDuring, "tps-during-"+name)
		}
	}
}

// BenchmarkTable2SLAPlacement regenerates Table 2: First-Fit vs optimal
// machine counts over the skew sweep. The reported metric is the total gap
// between First-Fit and the optimal across all skew factors.
func BenchmarkTable2SLAPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable2(benchCfg())
		gap := 0
		machines := 0
		for _, row := range res.Rows {
			gap += row.MachinesUsed - row.Optimal
			machines += row.MachinesUsed
		}
		b.ReportMetric(float64(gap), "firstfit-minus-optimal")
		b.ReportMetric(float64(machines), "total-machines")
	}
}

// --- ablation benches (design choices called out in DESIGN.md) -------------

// BenchmarkAblationPrepareLockRelease measures how many Table 1 violations
// the release-read-locks-at-PREPARE optimisation is responsible for: with
// the optimisation off, even the aggressive controller with Option 3 must
// be serializable.
func BenchmarkAblationPrepareLockRelease(b *testing.B) {
	run := func(release bool) int {
		engCfg := sqldb.DefaultConfig()
		engCfg.LockTimeout = 50 * time.Millisecond
		engCfg.ReleaseReadLocksAtPrepare = release
		return runAnomalyTrials(b, engCfg, 30)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(run(true)), "violations-with-optimisation")
		b.ReportMetric(float64(run(false)), "violations-without")
	}
}

// BenchmarkAblationBufferPool sweeps the buffer-pool size and reports the
// Option1/Option3 throughput ratio. The interesting regime is a pool that
// holds about one database's working set (the middle point): Option 1 then
// serves each database from a warm home replica while Option 3 thrashes
// both pools. With a tiny pool both options thrash and with a huge pool
// both fit, so the ratio approaches 1 at the extremes.
func BenchmarkAblationBufferPool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pages := range []int{8, 48, 4096} {
			ratio := option1Over3Ratio(b, pages)
			b.ReportMetric(ratio, fmt.Sprintf("opt1-over-opt3-%dpages", pages))
		}
	}
}

// BenchmarkAblationLockGranularity compares deadlock rates with row-level
// write locking (the default) against whole-table write locking.
func BenchmarkAblationLockGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := deadlockRateFor(b, false)
		table := deadlockRateFor(b, true)
		b.ReportMetric(row, "deadlocks-per-1k-rowlock")
		b.ReportMetric(table, "deadlocks-per-1k-tablelock")
	}
}

// BenchmarkAblationPlacement compares First-Fit against
// First-Fit-Decreasing and Best-Fit across the Table 2 sweep.
func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var ff, ffd, bf int
		for _, skew := range []float64{0.4, 0.8, 1.2, 1.6, 2.0} {
			w := workload.NewSLAWorkload(42, 12, skew)
			dbs := make([]sla.Database, len(w.SizesMB))
			for j := range dbs {
				dbs[j] = sla.Database{
					Name:     fmt.Sprintf("db%d", j),
					Req:      sla.Profile(w.SizesMB[j], w.TPS[j]),
					Replicas: 1,
				}
			}
			a, _, err := sla.PlaceAll(dbs)
			if err != nil {
				b.Fatal(err)
			}
			c, _, err := sla.PlaceAllFirstFitDecreasing(dbs)
			if err != nil {
				b.Fatal(err)
			}
			d, _, err := sla.PlaceAllBestFit(dbs)
			if err != nil {
				b.Fatal(err)
			}
			ff, ffd, bf = ff+a, ffd+c, bf+d
		}
		b.ReportMetric(float64(ff), "machines-firstfit")
		b.ReportMetric(float64(ffd), "machines-ffd")
		b.ReportMetric(float64(bf), "machines-bestfit")
	}
}

// --- micro benchmarks of the substrate -------------------------------------

// BenchmarkSQLPointRead measures single-machine point-read latency.
func BenchmarkSQLPointRead(b *testing.B) {
	e := sqldb.NewEngine(sqldb.DefaultConfig())
	if err := e.CreateDatabase("app"); err != nil {
		b.Fatal(err)
	}
	if _, err := e.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := e.Exec("app", fmt.Sprintf("INSERT INTO t VALUES (%d, 'val%d')", i, i)); err != nil {
			b.Fatal(err)
		}
	}
	stmt, err := sqldb.Parse("SELECT v FROM t WHERE id = ?")
	if err != nil {
		b.Fatal(err)
	}
	var res sqldb.Result
	params := []sqldb.Value{sqldb.NewInt(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := e.BeginReadOnly("app")
		params[0] = sqldb.NewInt(int64(i % 1000))
		if err := tx.ExecStmtInto(&res, stmt, params...); err != nil {
			b.Fatal(err)
		}
		_ = tx.Commit()
	}
}

// BenchmarkClusterReplicatedWrite measures a replicated single-row update
// through the cluster controller (2 replicas, conservative, 2PC).
func BenchmarkClusterReplicatedWrite(b *testing.B) {
	c := core.NewCluster("bench", core.Options{Replicas: 2})
	if _, err := c.AddMachines(2); err != nil {
		b.Fatal(err)
	}
	if err := c.CreateDatabase("app"); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Exec("app", "INSERT INTO t VALUES (1, 0)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Exec("app", "UPDATE t SET v = v + 1 WHERE id = 1"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTPCWMixSingleEngine measures raw TPC-W transaction latency on one
// engine (the no-replication upper bound of Figures 2–4). Each benchmark
// iteration is one mix-weighted transaction, so ns/op is the mean committed
// transaction latency and the derived tps metric the single-session
// throughput.
func BenchmarkTPCWMixSingleEngine(b *testing.B) {
	e := sqldb.NewEngine(sqldb.DefaultConfig())
	if err := e.CreateDatabase("tpcw"); err != nil {
		b.Fatal(err)
	}
	db := engineDB{e: e, db: "tpcw"}
	sc := tpcw.SmallScale(1)
	if err := tpcw.Load(db, sc); err != nil {
		b.Fatal(err)
	}
	w := tpcw.NewWorkload(sc)
	client := &tpcw.Client{DB: db, Mix: tpcw.ShoppingMix, Workload: w}
	// Warm the buffer pool and plan caches before timing.
	_ = client.RunN(1, 200)
	b.ReportAllocs()
	b.ResetTimer()
	st := client.RunN(42, b.N)
	b.StopTimer()
	if st.Fatal > 0 {
		b.Fatal("fatal errors in TPC-W session")
	}
	b.ReportMetric(st.TPS(), "tps")
}

// BenchmarkPlanCache contrasts repeated Session.Exec statement text with the
// plan cache on (default) and off: the cached path skips the lexer, parser
// and planner on every iteration after the first.
func BenchmarkPlanCache(b *testing.B) {
	setup := func(b *testing.B, cacheSize int) *sqldb.Session {
		cfg := sqldb.DefaultConfig()
		cfg.PlanCacheSize = cacheSize
		e := sqldb.NewEngine(cfg)
		if err := e.CreateDatabase("app"); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if _, err := e.Exec("app", fmt.Sprintf("INSERT INTO t VALUES (%d, 'val%d')", i, i)); err != nil {
				b.Fatal(err)
			}
		}
		return e.Session("app")
	}
	b.Run("hit", func(b *testing.B) {
		s := setup(b, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec("SELECT v FROM t WHERE id = ?", sqldb.NewInt(int64(i%1000))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("off", func(b *testing.B) {
		s := setup(b, -1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec("SELECT v FROM t WHERE id = ?", sqldb.NewInt(int64(i%1000))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBufferPoolParallel hammers point reads from parallel goroutines
// over a table an order of magnitude larger than one page, exercising the
// buffer pool's lock striping (a 4096-page pool spreads across 16 stripes).
func BenchmarkBufferPoolParallel(b *testing.B) {
	cfg := sqldb.DefaultConfig()
	cfg.PoolPages = 4096
	e := sqldb.NewEngine(cfg)
	if err := e.CreateDatabase("app"); err != nil {
		b.Fatal(err)
	}
	if _, err := e.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	const rows = 8192
	for i := 0; i < rows; i += 64 {
		stmt := "INSERT INTO t VALUES "
		for j := 0; j < 64; j++ {
			if j > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'val%d')", i+j, i+j)
		}
		if _, err := e.Exec("app", stmt); err != nil {
			b.Fatal(err)
		}
	}
	stmt, err := sqldb.Parse("SELECT v FROM t WHERE id = ?")
	if err != nil {
		b.Fatal(err)
	}
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := seq.Add(1) * 977
		i := uint64(0)
		for pb.Next() {
			i++
			tx, err := e.Begin("app")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tx.ExecStmt(stmt, sqldb.NewInt(int64((base+i*31)%rows))); err != nil {
				b.Fatal(err)
			}
			_ = tx.Commit()
		}
	})
	if got := e.Pool().Stripes(); got != 16 {
		b.Fatalf("expected 16 pool stripes for 4096 pages, got %d", got)
	}
}

// engineDB adapts one database of a single engine to tpcw.DB.
type engineDB struct {
	e  *sqldb.Engine
	db string
}

func (d engineDB) Begin() (tpcw.Txn, error) { return d.e.Begin(d.db) }

// BeginReadOnly lets the TPC-W client run its read-only profiles on the
// engine's optimistic lock-free fast path.
func (d engineDB) BeginReadOnly() (tpcw.Txn, error) { return d.e.BeginReadOnly(d.db) }

// runAnomalyTrials runs adversarial transaction pairs against a 2-machine
// aggressive Option-3 cluster and returns the number of serializability
// violations (see internal/core's Table 1 tests for the full matrix).
func runAnomalyTrials(b *testing.B, engCfg sqldb.Config, trials int) int {
	rec := history.NewRecorder()
	c := core.NewCluster("ablate", core.Options{
		ReadOption:   core.ReadOption3,
		AckMode:      core.Aggressive,
		Replicas:     2,
		EngineConfig: engCfg,
		Recorder:     rec,
	})
	if _, err := c.AddMachines(2); err != nil {
		b.Fatal(err)
	}
	if err := c.CreateDatabase("app"); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Exec("app", "CREATE TABLE obj (id INT PRIMARY KEY, v INT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Exec("app", "INSERT INTO obj VALUES (1, 0), (2, 0)"); err != nil {
		b.Fatal(err)
	}
	violations := 0
	for trial := 0; trial < trials; trial++ {
		rec.Reset()
		var wg sync.WaitGroup
		run := func(readID, writeID int64) {
			defer wg.Done()
			tx, err := c.Begin("app")
			if err != nil {
				return
			}
			if _, err := tx.Exec("SELECT v FROM obj WHERE id = ?", sqldb.NewInt(readID)); err != nil {
				return
			}
			if _, err := tx.Exec("UPDATE obj SET v = v + 1 WHERE id = ?", sqldb.NewInt(writeID)); err != nil {
				return
			}
			_ = tx.Commit()
		}
		wg.Add(2)
		go run(1, 2)
		go run(2, 1)
		wg.Wait()
		if ok, _, _ := history.Check(rec); !ok {
			violations++
		}
	}
	return violations
}

// option1Over3Ratio measures shopping-mix TPS under Option 1 divided by
// Option 3 for a given buffer-pool size. Two databases spread Option 1's
// rotated read homes over both machines, as in the paper's multi-tenant
// setting, so the comparison isolates cache locality rather than machine
// idling.
func option1Over3Ratio(b *testing.B, poolPages int) float64 {
	run := func(opt core.ReadOption) float64 {
		engCfg := sqldb.DefaultConfig()
		engCfg.PoolPages = poolPages
		engCfg.MissLatency = 1 * time.Millisecond
		engCfg.LockTimeout = 250 * time.Millisecond
		c := core.NewCluster("pool", core.Options{
			ReadOption:   opt,
			AckMode:      core.Conservative,
			Replicas:     2,
			EngineConfig: engCfg,
		})
		if _, err := c.AddMachines(2); err != nil {
			b.Fatal(err)
		}
		sc := tpcw.ScaleForMB(300, 42)
		total := 0.0
		stop := make(chan struct{})
		results := make(chan tpcw.Stats, 4)
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("app%d", i)
			if err := c.CreateDatabase(name); err != nil {
				b.Fatal(err)
			}
			db := benchClusterDB{c: c, db: name}
			if err := tpcw.Load(db, sc); err != nil {
				b.Fatal(err)
			}
			w := tpcw.NewWorkload(sc)
			for s := 0; s < 2; s++ {
				client := &tpcw.Client{DB: db, Mix: tpcw.ShoppingMix, Workload: w}
				go func(seed int64) { results <- client.RunSession(seed, stop) }(42 + int64(s))
			}
		}
		// Warm the pools, then measure steady state from cluster counters.
		time.Sleep(150 * time.Millisecond)
		before := c.Stats().Committed
		time.Sleep(250 * time.Millisecond)
		total = float64(c.Stats().Committed - before)
		close(stop)
		for i := 0; i < 4; i++ {
			<-results
		}
		return total
	}
	o1 := run(core.ReadOption1)
	o3 := run(core.ReadOption3)
	if o3 == 0 {
		return 0
	}
	return o1 / o3
}

// deadlockRateFor measures the ordering-mix deadlock rate with row-level
// vs table-level write locking. Table-level locking is emulated by running
// the mix against a schema variant without primary keys, which forces the
// engine onto whole-table X locks.
func deadlockRateFor(b *testing.B, tableLocks bool) float64 {
	e := sqldb.NewEngine(func() sqldb.Config {
		cfg := sqldb.DefaultConfig()
		cfg.LockTimeout = 100 * time.Millisecond
		return cfg
	}())
	if err := e.CreateDatabase("app"); err != nil {
		b.Fatal(err)
	}
	pk := " PRIMARY KEY"
	if tableLocks {
		pk = ""
	}
	if _, err := e.Exec("app", "CREATE TABLE acct (id INT"+pk+", bal INT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := e.Exec("app", fmt.Sprintf("INSERT INTO acct VALUES (%d, 100)", i)); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	done := make(chan uint64, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			var committed uint64
			i := int64(0)
			for {
				select {
				case <-stop:
					done <- committed
					return
				default:
				}
				i++
				a := (seed + i) % 8
				bb := (seed + i*7 + 3) % 8
				tx, err := e.Begin("app")
				if err != nil {
					continue
				}
				_, e1 := tx.Exec("UPDATE acct SET bal = bal - 1 WHERE id = ?", sqldb.NewInt(a))
				if e1 == nil {
					_, e1 = tx.Exec("UPDATE acct SET bal = bal + 1 WHERE id = ?", sqldb.NewInt(bb))
				}
				if e1 != nil {
					_ = tx.Rollback()
					continue
				}
				if tx.Commit() == nil {
					committed++
				}
			}
		}(int64(w) * 13)
	}
	time.Sleep(250 * time.Millisecond)
	close(stop)
	var committed uint64
	for w := 0; w < 8; w++ {
		committed += <-done
	}
	deadlocks := e.Stats().Deadlocks
	if committed == 0 {
		return 0
	}
	return float64(deadlocks) / float64(committed) * 1000
}

// benchClusterDB adapts a cluster database to tpcw.DB for benches.
type benchClusterDB struct {
	c  *core.Cluster
	db string
}

func (d benchClusterDB) Begin() (tpcw.Txn, error) { return d.c.Begin(d.db) }
