package sqldb

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewText("abc"), "'abc'"},
		{NewText("o'neil"), "'o''neil'"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewText("a"), NewText("b"), -1},
		{NewText("b"), NewText("b"), 0},
		{Null, NewInt(1), -1},
		{NewInt(1), Null, 1},
		{Null, Null, 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	gen := func(r *rand.Rand) Value {
		switch r.Intn(5) {
		case 0:
			return Null
		case 1:
			return NewInt(int64(r.Intn(20) - 10))
		case 2:
			return NewFloat(float64(r.Intn(20))/2 - 5)
		case 3:
			return NewText(string(rune('a' + r.Intn(5))))
		default:
			return NewBool(r.Intn(2) == 0)
		}
	}
	cfg := &quick.Config{
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(gen(r))
			vals[1] = reflect.ValueOf(gen(r))
		},
	}
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	if err := quick.Check(func(a, b Value) bool {
		return Compare(a, b) == -Compare(b, a)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	vals := []Value{
		Null, NewInt(-3), NewInt(0), NewInt(5), NewFloat(-1.5), NewFloat(0),
		NewFloat(4.5), NewText(""), NewText("a"), NewText("z"),
		NewBool(false), NewBool(true),
	}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Fatalf("transitivity violated: %v <= %v <= %v but Compare(%v,%v)=%d",
						a, b, c, a, c, Compare(a, c))
				}
			}
		}
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewText("x")}
	c := r.Clone()
	c[0] = NewInt(99)
	if r[0].Int != 1 {
		t.Fatalf("Clone aliases the original row")
	}
	if got := r.String(); got != "(1, 'x')" {
		t.Errorf("Row.String() = %q", got)
	}
}

func TestAsFloat(t *testing.T) {
	if got := NewInt(3).AsFloat(); got != 3 {
		t.Errorf("NewInt(3).AsFloat() = %v", got)
	}
	if got := NewFloat(2.5).AsFloat(); got != 2.5 {
		t.Errorf("NewFloat(2.5).AsFloat() = %v", got)
	}
	if got := NewText("x").AsFloat(); got != 0 {
		t.Errorf("text AsFloat() = %v, want 0", got)
	}
}
