package sqldb

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol // punctuation and operators: ( ) , . ; = != <> < <= > >= * + - /
	tokParam  // ? placeholder
)

// token is a single lexical unit with its position in the input.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  int
}

// String renders the token for parser error messages.
func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokString:
		return "'" + t.text + "'"
	default:
		return t.text
	}
}

// keywords recognised by the lexer. Identifiers matching these (case
// insensitive) become tokKeyword tokens with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "DROP": true, "INDEX": true, "ON": true, "PRIMARY": true,
	"KEY": true, "UNIQUE": true, "NOT": true, "NULL": true, "AND": true,
	"OR": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "JOIN": true, "INNER": true, "LEFT": true,
	"AS": true, "IN": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"INT": true, "INTEGER": true, "FLOAT": true, "DOUBLE": true, "TEXT": true,
	"VARCHAR": true, "CHAR": true, "BOOL": true, "BOOLEAN": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"GROUP": true, "HAVING": true, "DISTINCT": true, "TRUE": true, "FALSE": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "IF": true, "EXISTS": true,
	"EXPLAIN": true,
}

// lexer splits a SQL statement into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises src, returning the token stream terminated by tokEOF.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '\'':
		return l.lexString(start)
	case c == '?':
		l.pos++
		return token{kind: tokParam, text: "?", pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil
	case c == '>' || c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		if l.src[start:l.pos] == "!" {
			return token{}, &ParseError{Pos: start, Msg: "unexpected '!'"}
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil
	case strings.IndexByte("(),.;=*+-/", c) >= 0:
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	default:
		return token{}, &ParseError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

func (l *lexer) lexNumber(start int) (token, error) {
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !isFloat && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			isFloat = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			if next >= '0' && next <= '9' || ((next == '+' || next == '-') && l.pos+2 < len(l.src) && l.src[l.pos+2] >= '0' && l.src[l.pos+2] <= '9') {
				isFloat = true
				l.pos += 2
				continue
			}
		}
		break
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	return token{kind: kind, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexString(start int) (token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, &ParseError{Pos: start, Msg: "unterminated string literal"}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
