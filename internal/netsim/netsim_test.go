package netsim

import (
	"errors"
	"testing"
	"time"

	"sdp/internal/obs"
)

// runSchedule drives a fixed call pattern and records which faults fired.
func runSchedule(t *testing.T, seed int64) []string {
	t.Helper()
	n := New(seed, nil)
	n.sleep = func(time.Duration) {}
	n.SetDefaults(Faults{DropProb: 0.3, ReplyLossProb: 0.2, DupProb: 0.2, Latency: time.Millisecond, Jitter: time.Millisecond})
	l := n.Link("ctl", "m1")
	var out []string
	for i := 0; i < 200; i++ {
		ran := 0
		err := l.Call("op", true, func() error { ran++; return nil })
		switch {
		case errors.Is(err, ErrDropped):
			out = append(out, "drop")
		case errors.Is(err, ErrReplyLost):
			out = append(out, "replylost")
		case err == nil && ran == 2:
			out = append(out, "dup")
		case err == nil:
			out = append(out, "ok")
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	return out
}

func TestSeedDeterminism(t *testing.T) {
	a := runSchedule(t, 7)
	b := runSchedule(t, 7)
	c := runSchedule(t, 8)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %s vs %s", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 200-call fault schedule")
	}
}

func TestDropDoesNotExecute(t *testing.T) {
	n := New(1, nil)
	n.sleep = func(time.Duration) {}
	n.SetFaults("ctl", "m1", Faults{DropProb: 1})
	ran := false
	err := n.Link("ctl", "m1").Call("exec", false, func() error { ran = true; return nil })
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	if ran {
		t.Fatal("dropped request executed")
	}
	if !IsTransient(err) || Executed(err) {
		t.Fatal("drop must be transient and not-executed")
	}
}

func TestReplyLossExecutes(t *testing.T) {
	n := New(1, nil)
	n.sleep = func(time.Duration) {}
	n.SetFaults("ctl", "m1", Faults{ReplyLossProb: 1})
	ran := 0
	err := n.Link("ctl", "m1").Call("prepare", true, func() error { ran++; return nil })
	if !errors.Is(err, ErrReplyLost) {
		t.Fatalf("want ErrReplyLost, got %v", err)
	}
	if ran != 1 {
		t.Fatalf("call ran %d times, want 1", ran)
	}
	if !Executed(err) {
		t.Fatal("reply loss must report the call as executed")
	}
}

func TestDuplicationOnlyWhenIdempotent(t *testing.T) {
	n := New(1, nil)
	n.sleep = func(time.Duration) {}
	n.SetFaults("ctl", "m1", Faults{DupProb: 1})
	l := n.Link("ctl", "m1")
	ran := 0
	if err := l.Call("commit", true, func() error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("idempotent call ran %d times, want 2", ran)
	}
	ran = 0
	if err := l.Call("exec", false, func() error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("non-idempotent call ran %d times, want 1 (must never duplicate)", ran)
	}
}

func TestAsymmetricPartition(t *testing.T) {
	n := New(1, nil)
	n.sleep = func(time.Duration) {}
	n.Partition("ctl", "m1")
	if !n.Partitioned("ctl", "m1") {
		t.Fatal("ctl→m1 should be partitioned")
	}
	if n.Partitioned("m1", "ctl") {
		t.Fatal("partition must be asymmetric: m1→ctl should be open")
	}
	err := n.Link("ctl", "m1").Call("exec", false, func() error { return nil })
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	if err := n.Link("m1", "ctl").Call("exec", false, func() error { return nil }); err != nil {
		t.Fatalf("reverse direction failed: %v", err)
	}
	n.Heal("ctl", "m1")
	if err := n.Link("ctl", "m1").Call("exec", false, func() error { return nil }); err != nil {
		t.Fatalf("healed link failed: %v", err)
	}
}

func TestDeliveryHookFiresAfterExecution(t *testing.T) {
	n := New(1, nil)
	n.sleep = func(time.Duration) {}
	var order []string
	n.OnDeliver(func(info CallInfo) {
		order = append(order, "hook:"+info.Op+"->"+info.To)
	})
	err := n.Link("ctl", "m2").Call("prepare", true, func() error {
		order = append(order, "exec")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "exec" || order[1] != "hook:prepare->m2" {
		t.Fatalf("hook did not fire after execution: %v", order)
	}
	n.ClearHooks()
	order = nil
	_ = n.Link("ctl", "m2").Call("prepare", true, func() error { return nil })
	if len(order) != 0 {
		t.Fatal("cleared hook still fired")
	}
}

func TestHookNotCalledOnDrop(t *testing.T) {
	n := New(1, nil)
	n.sleep = func(time.Duration) {}
	n.SetFaults("ctl", "m1", Faults{DropProb: 1})
	fired := false
	n.OnDeliver(func(CallInfo) { fired = true })
	_ = n.Link("ctl", "m1").Call("exec", false, func() error { return nil })
	if fired {
		t.Fatal("hook fired for a dropped request that never executed")
	}
}

func TestQuiesce(t *testing.T) {
	n := New(1, nil)
	n.sleep = func(time.Duration) {}
	n.SetDefaults(Faults{DropProb: 1})
	n.SetFaults("ctl", "m1", Faults{DropProb: 1})
	n.PartitionPair("ctl", "m2")
	n.OnDeliver(func(CallInfo) { t.Fatal("hook survived Quiesce") })
	n.Quiesce()
	for _, to := range []string{"m1", "m2"} {
		if err := n.Link("ctl", to).Call("exec", false, func() error { return nil }); err != nil {
			t.Fatalf("link ctl→%s still faulty after Quiesce: %v", to, err)
		}
	}
	if n.partitions.Value() != 0 {
		t.Fatalf("partition gauge not zero after Quiesce: %v", n.partitions.Value())
	}
}

func TestNilNetworkAndLink(t *testing.T) {
	var n *Network
	if n.Partitioned("a", "b") {
		t.Fatal("nil network reported a partition")
	}
	n.SetDefaults(Faults{DropProb: 1}) // must not panic
	n.Quiesce()
	l := n.Link("a", "b")
	if l != nil {
		t.Fatal("nil network must return nil links")
	}
	ran := false
	if err := l.Call("exec", false, func() error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("nil link must run fn directly: ran=%v err=%v", ran, err)
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	n := New(3, reg)
	n.sleep = func(time.Duration) {}
	n.SetFaults("ctl", "m1", Faults{DropProb: 1})
	_ = n.Link("ctl", "m1").Call("exec", false, func() error { return nil })
	if n.calls.Value() != 1 || n.dropped.Value() != 1 {
		t.Fatalf("counters not updated: calls=%d dropped=%d", n.calls.Value(), n.dropped.Value())
	}
}
