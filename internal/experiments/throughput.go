package experiments

import (
	"fmt"
	"time"

	"sdp/internal/core"
	"sdp/internal/tpcw"
)

// ReplicationMode is one series of Figures 2–4: no replication, or
// synchronous replication with one of the three read-routing options.
type ReplicationMode struct {
	Name     string
	Replicas int
	Option   core.ReadOption
}

// Modes returns the four series of Figures 2–4, in the paper's order.
func Modes() []ReplicationMode {
	return []ReplicationMode{
		{Name: "no-replication", Replicas: 1, Option: core.ReadOption1},
		{Name: "option1", Replicas: 2, Option: core.ReadOption1},
		{Name: "option2", Replicas: 2, Option: core.ReadOption2},
		{Name: "option3", Replicas: 2, Option: core.ReadOption3},
	}
}

// ThroughputPoint is one measurement: offered concurrency vs achieved TPS.
type ThroughputPoint struct {
	Concurrency int
	TPS         float64
	Aborted     uint64
	Fatal       uint64
}

// ThroughputResult holds the series of one figure.
type ThroughputResult struct {
	Mix    string
	Series map[string][]ThroughputPoint
	Order  []string
}

// RunThroughput reproduces one of Figures 2–4: total committed TPC-W
// transactions per second across all hosted databases, as offered
// concurrency grows, for each replication mode. The buffer pool is sized
// below the working set so read locality (Option 1 best, Option 3 worst)
// shows up exactly as in the paper.
func RunThroughput(mix tpcw.Mix, cfg Config) ThroughputResult {
	concurrencies := []int{2, 4, 8, 16}
	numDBs := 4
	if cfg.Quick {
		concurrencies = []int{2, 4}
		numDBs = 2
	}
	res := ThroughputResult{Mix: mix.Name, Series: make(map[string][]ThroughputPoint)}
	for _, mode := range Modes() {
		res.Order = append(res.Order, mode.Name)
		for _, conc := range concurrencies {
			pt := runThroughputPoint(mix, mode, numDBs, conc, cfg)
			res.Series[mode.Name] = append(res.Series[mode.Name], pt)
		}
	}
	return res
}

// runThroughputPoint builds a fresh cluster, loads TPC-W into each
// database, and drives the mix at the given concurrency.
func runThroughputPoint(mix tpcw.Mix, mode ReplicationMode, numDBs, concurrency int, cfg Config) ThroughputPoint {
	c := core.NewCluster("tp", core.Options{
		ReadOption:   mode.Option,
		AckMode:      core.Conservative,
		Replicas:     mode.Replicas,
		EngineConfig: cfg.engineConfig(),
	})
	if _, err := c.AddMachines(4); err != nil {
		panic(err)
	}
	scale := tpcw.ScaleForMB(cfg.dbSizeMB(), cfg.Seed)
	dbs := make([]clusterDB, numDBs)
	workloads := make([]*tpcw.Workload, numDBs)
	for i := range dbs {
		name := fmt.Sprintf("app%d", i)
		if err := c.CreateDatabase(name); err != nil {
			panic(err)
		}
		dbs[i] = clusterDB{c: c, db: name}
		if err := tpcw.Load(dbs[i], scale); err != nil {
			panic(err)
		}
		// One shared Workload per database: its order-ID allocator must be
		// shared by every session of that database.
		workloads[i] = tpcw.NewWorkload(scale)
	}

	stop := make(chan struct{})
	results := make(chan tpcw.Stats, concurrency)
	for s := 0; s < concurrency; s++ {
		client := &tpcw.Client{
			DB:       dbs[s%numDBs],
			Mix:      mix,
			Workload: workloads[s%numDBs],
			Classify: classify,
		}
		go func(seed int64) {
			results <- client.RunSession(seed, stop)
		}(cfg.Seed + int64(s)*104729)
	}
	// Warm the buffer pools before measuring, then count committed
	// transactions over the measurement window from the cluster counters.
	d := cfg.measureDuration()
	time.Sleep(d / 2)
	before := c.Stats().Committed
	time.Sleep(d)
	committed := c.Stats().Committed - before
	close(stop)
	var total tpcw.Stats
	for s := 0; s < concurrency; s++ {
		st := <-results
		total.Aborted += st.Aborted
		total.Fatal += st.Fatal
	}
	return ThroughputPoint{
		Concurrency: concurrency,
		TPS:         float64(committed) / d.Seconds(),
		Aborted:     total.Aborted,
		Fatal:       total.Fatal,
	}
}

// Render formats the figure as a table of series x concurrency.
func (r ThroughputResult) Render(figure string) *Table {
	t := &Table{Title: fmt.Sprintf("%s: Throughput with Synchronous Replication (%s mix), TPS", figure, r.Mix)}
	t.Header = []string{"series"}
	if len(r.Order) > 0 {
		for _, pt := range r.Series[r.Order[0]] {
			t.Header = append(t.Header, fmt.Sprintf("conc=%d", pt.Concurrency))
		}
	}
	for _, name := range r.Order {
		row := []string{name}
		for _, pt := range r.Series[name] {
			row = append(row, f1(pt.TPS))
		}
		t.AddRow(row...)
	}
	return t
}
