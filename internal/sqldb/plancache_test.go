package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// cachedPlan fetches the resident text-cache entry for (app, sql), failing
// the test if it is absent.
func cachedPlan(t *testing.T, e *Engine, sql string) *stmtPlan {
	t.Helper()
	_, plan, ok := e.plans.get("app", sql)
	if !ok {
		t.Fatalf("no cached plan for %q", sql)
	}
	return plan
}

func TestPlanCacheHitCounter(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'a'), (2, 'b')")

	base := e.Stats().PlanCache
	const q = "SELECT v FROM t WHERE id = ?"
	for i := 0; i < 5; i++ {
		mustExec(t, e, q, NewInt(int64(i%2+1)))
	}
	st := e.Stats().PlanCache
	if hits := st.Hits - base.Hits; hits != 4 {
		t.Errorf("hits = %d, want 4 (first exec is the miss)", hits)
	}
	if misses := st.Misses - base.Misses; misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
	if e.plans.len() == 0 {
		t.Error("no resident text-cache entries")
	}
}

func TestPlanCacheParameterisedSharesOnePlan(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")

	const q = "SELECT v FROM t WHERE id = ?"
	mustExec(t, e, q, NewInt(1))
	before := e.plans.len()
	first := cachedPlan(t, e, q)
	for i := int64(1); i <= 3; i++ {
		res := mustExec(t, e, q, NewInt(i))
		if len(res.Rows) != 1 {
			t.Fatalf("id=%d: rows = %d", i, len(res.Rows))
		}
	}
	if e.plans.len() != before {
		t.Errorf("cache grew from %d to %d entries across bindings", before, e.plans.len())
	}
	if got := cachedPlan(t, e, q); got != first {
		t.Error("plan was re-derived between bindings of one statement")
	}
	if first.access == nil || first.access.kind != pathPoint {
		t.Errorf("parameterised PK lookup plan kind = %v, want point", first.access)
	}
}

func TestPlanCacheDDLEvictsTablePlans(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, e, "CREATE TABLE other (id INT PRIMARY KEY)")
	mustExec(t, e, "SELECT * FROM t")
	mustExec(t, e, "SELECT * FROM other")

	mustExec(t, e, "DROP TABLE t")
	if _, _, ok := e.plans.get("app", "SELECT * FROM t"); ok {
		t.Error("plan referencing dropped table still resident")
	}
	if _, _, ok := e.plans.get("app", "SELECT * FROM other"); !ok {
		t.Error("plan for unrelated table was evicted")
	}
}

func TestPlanCacheStalePlanNeverReadsDroppedTable(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'a')")
	const q = "SELECT * FROM t WHERE id = 1"
	mustExec(t, e, q)

	mustExec(t, e, "DROP TABLE t")
	if _, err := e.Exec("app", q); !errors.Is(err, ErrNoTable) {
		t.Fatalf("query after drop: err = %v, want ErrNoTable", err)
	}

	// Recreate the name with a different shape: the old plan (point access on
	// colIdx 0, projection over id+v) must not leak into the new incarnation.
	mustExec(t, e, "CREATE TABLE t (name TEXT, id INT PRIMARY KEY)")
	mustExec(t, e, "INSERT INTO t VALUES ('x', 1)")
	res := mustExec(t, e, q)
	if len(res.Cols) != 2 || res.Cols[0] != "name" {
		t.Errorf("cols after recreate = %v, want [name id]", res.Cols)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "x" {
		t.Errorf("rows after recreate = %v", res.Rows)
	}
}

func TestPlanCacheCreateIndexRederivesPlan(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, cat TEXT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'a')")

	const q = "SELECT id FROM t WHERE cat = 'a'"
	mustExec(t, e, q)
	if plan := cachedPlan(t, e, q); plan.access == nil || plan.access.kind != pathScan {
		t.Fatalf("pre-index plan kind = %v, want scan", plan.access)
	}

	mustExec(t, e, "CREATE INDEX idx_cat ON t (cat)")
	res := mustExec(t, e, q)
	if len(res.Rows) != 2 {
		t.Fatalf("rows after index = %d, want 2", len(res.Rows))
	}
	if plan := cachedPlan(t, e, q); plan.access == nil || plan.access.kind != pathIndexEq {
		t.Errorf("post-index plan kind = %v, want index equality", plan.access)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PlanCacheSize = 2
	e := NewEngine(cfg)
	if err := e.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY)")
	for i := 0; i < 5; i++ {
		mustExec(t, e, fmt.Sprintf("SELECT * FROM t WHERE id = %d", i))
	}
	if n := e.plans.len(); n > 2 {
		t.Errorf("resident entries = %d, want <= 2", n)
	}
	if ev := e.Stats().PlanCache.Evictions; ev == 0 {
		t.Error("no evictions counted despite overflowing the cache")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PlanCacheSize = -1
	e := NewEngine(cfg)
	if err := e.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustExec(t, e, "INSERT INTO t VALUES (1)")
	for i := 0; i < 3; i++ {
		mustExec(t, e, "SELECT * FROM t WHERE id = 1")
	}
	st := e.Stats().PlanCache
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("disabled cache counted hits=%d misses=%d", st.Hits, st.Misses)
	}
	if e.plans.len() != 0 {
		t.Errorf("disabled cache holds %d entries", e.plans.len())
	}
}

func TestStmtCacheSharesParsedStatements(t *testing.T) {
	c := NewStmtCache(2)
	const q = "SELECT 1"
	a, err := c.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeat Parse did not return the cached statement")
	}
	if _, err := c.Parse("SELECT !!"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := c.Parse("SELECT 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parse("SELECT 3"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want capacity 2", c.Len())
	}
}

// TestDDLConcurrentWithSelects hammers cached SELECTs from 8 clients while a
// DDL churn loop creates and drops tables and adds indexes on the engine.
// Run under -race this exercises the catalog RWMutex paths and the plan
// cache's generation-based invalidation: queries against the stable table
// must always succeed and never observe a stale plan.
func TestDDLConcurrentWithSelects(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, cat TEXT, n INT)")
	for i := 0; i < 100; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d, 'c%d', %d)", i, i%7, i))
	}

	const clients = 8
	stop := make(chan struct{})
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := e.Session("app")
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Exec("SELECT n FROM t WHERE id = ?", NewInt(int64((c*31+j)%100))); err != nil {
					errc <- fmt.Errorf("client %d point read: %w", c, err)
					return
				}
				if res, err := s.Exec("SELECT id FROM t WHERE id BETWEEN 10 AND 19"); err != nil {
					errc <- fmt.Errorf("client %d range read: %w", c, err)
					return
				} else if len(res.Rows) != 10 {
					errc <- fmt.Errorf("client %d range read: %d rows, want 10", c, len(res.Rows))
					return
				}
				// Queries against the churned tables may race a DROP; only
				// a missing table is an acceptable failure.
				if _, err := s.Exec("SELECT * FROM churn WHERE v = 'x'"); err != nil && !errors.Is(err, ErrNoTable) {
					errc <- fmt.Errorf("client %d churn read: %w", c, err)
					return
				}
			}
		}(c)
	}

	for k := 0; k < 40; k++ {
		mustExec(t, e, "CREATE TABLE churn (id INT PRIMARY KEY, v TEXT)")
		mustExec(t, e, fmt.Sprintf("CREATE INDEX churn_v%d ON churn (v)", k))
		mustExec(t, e, "INSERT INTO churn VALUES (1, 'x')")
		mustExec(t, e, "DROP TABLE churn")
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPlanCacheCrossDatabaseIsolation checks that the same SQL text executed
// against two databases of one engine gets two independent plans.
func TestPlanCacheCrossDatabaseIsolation(t *testing.T) {
	e := newTestDB(t)
	if err := e.CreateDatabase("app2"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	if _, err := e.Exec("app2", "CREATE TABLE t (a TEXT, b INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "INSERT INTO t VALUES (1, 'one')")
	if _, err := e.Exec("app2", "INSERT INTO t VALUES ('two', 2)"); err != nil {
		t.Fatal(err)
	}

	const q = "SELECT * FROM t"
	res := mustExec(t, e, q)
	if strings.Join(res.Cols, ",") != "id,v" {
		t.Errorf("app cols = %v", res.Cols)
	}
	res2, err := e.Exec("app2", q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res2.Cols, ",") != "a,b" {
		t.Errorf("app2 cols = %v", res2.Cols)
	}
}
