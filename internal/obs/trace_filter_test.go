package obs

import (
	"testing"
)

// TestEventsFiltered covers the filter dimensions: scope only, id only,
// both, wildcards, and a wrapped (full) ring keeping oldest-first order.
func TestEventsFiltered(t *testing.T) {
	tr := NewTracer(8)
	tr.Record("2pc", "gid:1", "prepare", "")
	tr.Record("2pc", "gid:2", "prepare", "")
	tr.Record("copy", "shop", "table_copied", "item")
	tr.Record("2pc", "gid:1", "commit", "")

	if got := tr.EventsFiltered("2pc", ""); len(got) != 3 {
		t.Fatalf("scope filter: got %d events, want 3", len(got))
	}
	if got := tr.EventsFiltered("", "gid:1"); len(got) != 2 || got[0].Phase != "prepare" || got[1].Phase != "commit" {
		t.Fatalf("id filter: got %+v, want prepare then commit", got)
	}
	if got := tr.EventsFiltered("2pc", "gid:2"); len(got) != 1 {
		t.Fatalf("scope+id filter: got %d events, want 1", len(got))
	}
	if got := tr.EventsFiltered("", ""); len(got) != 4 {
		t.Fatalf("wildcard: got %d events, want 4", len(got))
	}
	if got := tr.EventsFiltered("recovery", ""); got != nil {
		t.Fatalf("no match should return nil, got %+v", got)
	}

	// Wrap the ring; the oldest events must fall out and order must hold.
	for i := 0; i < 6; i++ {
		tr.Record("repl", "shop", "apply", "")
	}
	got := tr.EventsFiltered("2pc", "")
	if len(got) != 1 || got[0].Phase != "commit" {
		t.Fatalf("after wrap: got %+v, want only the gid:1 commit", got)
	}

	// A nil tracer filters to nothing.
	var nilTr *Tracer
	if got := nilTr.EventsFiltered("2pc", ""); got != nil {
		t.Fatalf("nil tracer: got %+v", got)
	}
}

// TestEventsFilteredAllocations pins the contract the /tracez endpoint
// relies on: filtering allocates nothing beyond the result slice, even
// against a full ring.
func TestEventsFilteredAllocations(t *testing.T) {
	tr := NewTracer(256)
	for i := 0; i < 512; i++ { // wrap: exercise the full-ring walk
		scope := "2pc"
		if i%2 == 0 {
			scope = "copy"
		}
		tr.Record(scope, "gid:1", "prepare", "")
	}

	if allocs := testing.AllocsPerRun(100, func() {
		tr.EventsFiltered("2pc", "gid:1")
	}); allocs > 1 {
		t.Errorf("filter with matches: %.1f allocs/run, want at most the result slice (1)", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		tr.EventsFiltered("recovery", "")
	}); allocs != 0 {
		t.Errorf("filter with no matches: %.1f allocs/run, want 0", allocs)
	}
}
