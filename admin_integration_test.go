package sdp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdp/internal/sla"
	"sdp/internal/tpcw"
)

// adminTestDB adapts a Conn to tpcw.DB for the integration workload.
type adminTestDB struct{ conn *Conn }

func (d adminTestDB) Begin() (tpcw.Txn, error) { return d.conn.Begin() }

// TestAdminPlaneIntegration drives a TPC-W workload against a full platform
// whose database carries a deliberately unattainable latency SLA, then
// checks the whole admin surface end to end: /metrics serves the platform's
// families in Prometheus text including non-zero sla_violations_total,
// /slaz reports the violation with the hosting machines flagged, and the
// probes agree with the cluster state.
func TestAdminPlaneIntegration(t *testing.T) {
	p := New(Config{
		ClusterSize: 3,
		SLAWindow:   50 * time.Millisecond,
	})
	p.AddColo("colo1", "us-east", 4)

	// A mean-commit-latency bound of 1ns: every busy window violates.
	if err := p.CreateDatabase("shop", SLA{
		SizeMB:            1,
		MinTPS:            1,
		MaxRejectFraction: 0.5,
		MaxLatency:        time.Nanosecond,
	}, "colo1"); err != nil {
		t.Fatal(err)
	}

	db := adminTestDB{conn: p.Open("shop")}
	scale := tpcw.SmallScale(1)
	if err := tpcw.Load(db, scale); err != nil {
		t.Fatal(err)
	}
	client := &tpcw.Client{DB: db, Mix: tpcw.ShoppingMix, Workload: tpcw.NewWorkload(scale)}
	stop := make(chan struct{})
	done := make(chan tpcw.Stats, 1)
	go func() { done <- client.RunSession(7, stop) }()
	time.Sleep(400 * time.Millisecond)
	close(stop)
	st := <-done
	if st.Committed == 0 {
		t.Fatalf("workload committed nothing: %+v", st)
	}
	// Let the last window close so evaluation sees it.
	time.Sleep(60 * time.Millisecond)

	h := p.AdminHandler()
	get := func(path string) (*httptest.ResponseRecorder, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec, rec.Body.String()
	}

	// /metrics: valid exposition covering the platform's families plus the
	// SLA monitor's violation counter for the shop database.
	rec, metrics := get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if families := strings.Count(metrics, "# TYPE "); families < 10 {
		t.Errorf("/metrics covers %d families, want >= 10", families)
	}
	if !strings.Contains(metrics, `sla_violations_total{db="shop",kind="latency"}`) {
		t.Errorf("/metrics missing sla_violations_total{db=\"shop\",...}:\n%.2000s", metrics)
	}
	for _, family := range []string{"core_txn_committed_total", "sla_compliance{db=\"shop\"} 0"} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}

	// /slaz: a non-empty violation report flagging the hosting machines.
	rec, body := get("/slaz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/slaz = %d", rec.Code)
	}
	var rep sla.ComplianceReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Violating()) != 1 || rep.Violating()[0] != "shop" {
		t.Fatalf("/slaz violating = %v, want [shop]", rep.Violating())
	}
	d := rep.Databases[0]
	if d.Compliant || d.WindowsViolated == 0 || d.LastViolation == nil {
		t.Errorf("/slaz entry should record the violation: %+v", d)
	}
	if len(d.Machines) == 0 {
		t.Error("/slaz should flag the machines hosting the violating replicas")
	}

	// Probes: the platform is alive and (no copies in flight) ready.
	if rec, body := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz = %d %s", rec.Code, body)
	}
	if rec, body := get("/readyz"); rec.Code != http.StatusOK {
		t.Errorf("/readyz = %d %s", rec.Code, body)
	}

	// /tracez with the sla scope carries the violation events.
	_, body = get("/tracez?scope=sla&gid=shop")
	var trace struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatal(err)
	}
	if trace.Count == 0 {
		t.Error("/tracez?scope=sla should carry violation events")
	}

	// ServeAdmin binds a real port and serves the same handler.
	srv, err := p.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "sla_violations_total") {
		t.Errorf("ServeAdmin /metrics = %d", resp.StatusCode)
	}
}

// TestAdminControllerQuorumProbes boots a platform with replicated cluster
// controllers and checks the probes in both states: with a leader holding the
// quorum lease /healthz carries the leader identity and term and /readyz is
// ready; with every controller replica stopped the lease lapses, /healthz
// flips controller_quorum to false, and /readyz goes 503 naming the cluster.
func TestAdminControllerQuorumProbes(t *testing.T) {
	p := New(Config{ClusterSize: 3, Controllers: 3})
	p.AddColo("colo1", "us-east", 4)
	if err := p.CreateDatabase("shop", SLA{
		SizeMB: 1, MinTPS: 1, MaxRejectFraction: 0.5,
	}, "colo1"); err != nil {
		t.Fatal(err)
	}

	h := p.AdminHandler()
	get := func(path string) (*httptest.ResponseRecorder, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec, rec.Body.String()
	}

	rec, body := get("/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d %s", rec.Code, body)
	}
	for _, want := range []string{`"controllers": 3`, `"controller_leader":`, `"controller_term":`, `"controller_quorum": true`} {
		if !strings.Contains(body, want) {
			t.Errorf("/healthz missing %q:\n%s", want, body)
		}
	}
	if rec, body := get("/readyz"); rec.Code != http.StatusOK {
		t.Errorf("/readyz with quorum = %d %s", rec.Code, body)
	}

	// Stop every controller replica: the quorum lease lapses and the data
	// path refuses new transactions, which readiness must surface.
	co, err := p.System().Colo("colo1")
	if err != nil {
		t.Fatal(err)
	}
	cl := co.Clusters()[0]
	for _, id := range cl.ControllerIDs() {
		if err := cl.StopController(id); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, body = get("/readyz")
		if rec.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz stayed %d after stopping all controllers: %s", rec.Code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(body, "controller quorum lost") {
		t.Errorf("/readyz reason missing quorum loss: %s", body)
	}
	if rec, body := get("/healthz"); !strings.Contains(body, `"controller_quorum": false`) {
		t.Errorf("/healthz should report lost quorum (%d): %s", rec.Code, body)
	}
}
