package sdp

import (
	"errors"
	"fmt"
	"sync"

	"sdp/internal/sqldb"
	"sdp/internal/wire"
)

// WireConfig re-exports the wire server's tuning knobs for ServeWire.
type WireConfig = wire.ServerConfig

// ErrBadToken is returned by the wire handshake when a token does not
// match the one registered for the database.
var ErrBadToken = errors.New("sdp: bad auth token")

// wireAuth holds the platform's per-tenant token table. It lives outside
// Platform's main struct so the zero-token case stays allocation-free.
type wireAuth struct {
	mu     sync.RWMutex
	tokens map[string]string
}

// SetToken registers the auth token wire clients must present to open
// sessions on db. Databases without a registered token accept any token
// (useful for tests and demos); production tenants set one at provisioning
// time.
func (p *Platform) SetToken(db, token string) {
	p.auth.mu.Lock()
	if p.auth.tokens == nil {
		p.auth.tokens = make(map[string]string)
	}
	p.auth.tokens[db] = token
	p.auth.mu.Unlock()
}

// wireBackend adapts Platform to the wire.Backend interface. It is a
// separate type (not methods on Platform) so Authenticate/Begin do not
// pollute the public platform API.
type wireBackend struct{ p *Platform }

// Authenticate admits a handshake when the database routes to a live colo
// and the token matches the registered one (if any).
func (b wireBackend) Authenticate(db, token string) error {
	if _, err := b.p.sys.Route(db); err != nil {
		return err
	}
	b.p.auth.mu.RLock()
	want, registered := b.p.auth.tokens[db]
	b.p.auth.mu.RUnlock()
	if registered && want != token {
		return fmt.Errorf("%w for database %s", ErrBadToken, db)
	}
	return nil
}

// Begin opens a routed transaction; *system.Txn satisfies wire.Txn.
func (b wireBackend) Begin(db string) (wire.Txn, error) {
	t, err := b.p.sys.Begin(db)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ServeWire starts the wire-protocol TCP server on Config.Listen (use
// "127.0.0.1:0" for an ephemeral port; see Server.Addr). The server shares
// the platform's observability registry, so wire_* metrics appear in
// Metrics().Snapshot() next to every other layer. Close the returned
// server to drain gracefully.
func (p *Platform) ServeWire() (*wire.Server, error) {
	if p.cfg.Listen == "" {
		return nil, errors.New("sdp: Config.Listen is empty")
	}
	return wire.Serve(p.cfg.Listen, wire.ServerConfig{
		Backend:     wireBackend{p: p},
		Metrics:     p.reg,
		Banner:      "sdp/" + wireBannerVersion,
		TraceSample: p.cfg.TraceSample,
		SlowQuery:   p.cfg.SlowQuery,
	})
}

// wireBannerVersion identifies the server build in MsgWelcome banners.
const wireBannerVersion = "8"

// Stmt is a prepared statement on an in-process connection: parsed once,
// executed many times. Each execution skips the parser and hits the
// engine's pointer-keyed plan cache, the same hot path the wire server's
// MsgExec takes.
type Stmt struct {
	c    *Conn
	sql  string
	stmt sqldb.Statement
}

// Prepare parses sql once and returns a reusable statement handle.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	stmt, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, sql: sql, stmt: stmt}, nil
}

// Exec runs the prepared statement in its own transaction (autocommit).
func (s *Stmt) Exec(params ...Value) (*Result, error) {
	t, err := s.c.p.sys.Begin(s.c.db)
	if err != nil {
		return nil, err
	}
	res, err := t.ExecStmt(s.sql, s.stmt, params...)
	if err != nil {
		_ = t.Rollback()
		return nil, err
	}
	if err := t.Commit(); err != nil {
		return nil, err
	}
	return res, nil
}

// ExecPrepared runs a prepared statement inside the transaction.
func (t *Tx) ExecPrepared(s *Stmt, params ...Value) (*Result, error) {
	return t.inner.ExecStmt(s.sql, s.stmt, params...)
}
