package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sdp/internal/sqldb"
)

// newMetricsTestCluster builds a cluster with n machines and one database
// "app" with a single integer table.
func newMetricsTestCluster(t *testing.T, n, replicas int) *Cluster {
	t.Helper()
	c := NewCluster("obs-test", Options{Replicas: replicas})
	if _, err := c.AddMachines(n); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := c.Exec("app", "INSERT INTO t VALUES (?, 0)", sqldb.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestCommitMetrics checks that committed transactions show up in the
// registry with matching 2PC phase latencies, and that Stats() agrees with
// the snapshot.
func TestCommitMetrics(t *testing.T) {
	c := newMetricsTestCluster(t, 2, 2)
	for i := 0; i < 5; i++ {
		if _, err := c.Exec("app", "UPDATE t SET v = v + 1 WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
	}
	// One read-only transaction.
	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("SELECT v FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	s := c.Metrics().Snapshot()
	prepares := s.Counter("core_2pc_prepare_total")
	if prepares == 0 {
		t.Fatal("no 2PC prepares recorded")
	}
	if got := s.Counter("core_2pc_readonly_commit_total"); got != 1 {
		t.Fatalf("readonly commits = %d, want 1", got)
	}
	ph, ok := s.Histogram("core_2pc_prepare_seconds")
	if !ok || ph.Count != prepares {
		t.Fatalf("prepare latency count = %d (ok=%v), want %d", ph.Count, ok, prepares)
	}
	if ph.P95 <= 0 {
		t.Fatal("prepare p95 is zero")
	}
	ch, ok := s.Histogram("core_2pc_commit_seconds")
	if !ok || ch.Count != prepares-s.Counter("core_2pc_vote_no_total") {
		t.Fatalf("commit latency count = %d, want %d", ch.Count, prepares)
	}
	if got := s.Counter("core_read_route_total", "option", "option1"); got == 0 {
		t.Fatal("no read-routing decisions recorded")
	}
	st := c.Stats()
	if st.Committed != s.Counter("core_txn_committed_total") {
		t.Fatalf("Stats().Committed = %d, snapshot = %d", st.Committed, s.Counter("core_txn_committed_total"))
	}
	// The bridge hook must have pulled engine stats into the registry.
	if got := s.Gauge("sqldb_engine_stat", "cluster", "obs-test", "stat", "commits"); got == 0 {
		t.Fatal("bridged engine commit gauge is zero")
	}
	// 2PC trace events must correlate by gid.
	trace := c.Metrics().Trace().ByScope("2pc")
	if len(trace) == 0 {
		t.Fatal("no 2pc trace events")
	}
	if got := c.Metrics().Trace().ByID(trace[0].ID); len(got) == 0 {
		t.Fatal("correlation ID lookup returned nothing")
	}
}

// TestAbortCountedOnceDeadlockVictim forces a deadlock through the cluster
// controller and checks the satellite guarantee: the victim increments the
// abort counter exactly once, even when the client also calls Rollback
// afterwards (the usual client reaction to an error).
func TestAbortCountedOnceDeadlockVictim(t *testing.T) {
	c := newMetricsTestCluster(t, 1, 1)
	base := c.Stats()

	t1, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Exec("UPDATE t SET v = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Exec("UPDATE t SET v = 2 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}

	// t1 blocks on row 2; once it is waiting, t2's request for row 1
	// closes the cycle and one of the two becomes the deadlock victim.
	var wg sync.WaitGroup
	wg.Add(1)
	var t1Err error
	go func() {
		defer wg.Done()
		_, t1Err = t1.Exec("UPDATE t SET v = 1 WHERE id = 2")
	}()
	time.Sleep(50 * time.Millisecond)
	_, t2Err := t2.Exec("UPDATE t SET v = 2 WHERE id = 1")
	wg.Wait()

	victim, survivor := t2, t1
	victimErr := t2Err
	if t2Err == nil {
		victim, survivor, victimErr = t1, t2, t1Err
	}
	if victimErr == nil {
		t.Fatal("expected one transaction to be the deadlock victim")
	}
	if !errors.Is(victimErr, sqldb.ErrDeadlock) {
		t.Fatalf("victim error = %v, want deadlock", victimErr)
	}
	// The client's usual reaction: roll back after the error. The
	// transaction is already finished, so this must not double-count.
	if err := victim.Rollback(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("rollback after deadlock = %v, want ErrTxnDone", err)
	}
	if err := survivor.Commit(); err != nil {
		t.Fatalf("survivor commit: %v", err)
	}

	st := c.Stats()
	if got := st.Aborted - base.Aborted; got != 1 {
		t.Fatalf("aborted delta = %d, want exactly 1", got)
	}
	if got := st.Committed - base.Committed; got != 1 {
		t.Fatalf("committed delta = %d, want exactly 1", got)
	}
	if st.Deadlocks == 0 {
		t.Fatal("engine deadlock counter not aggregated")
	}
}

// TestAbortCountedOnceOnVoteNo drives the other 2PC abort path: a machine
// failing before PREPARE makes a participant vote no; the abort must count
// once and the vote-no counter must record the round.
func TestAbortCountedOnceOnVoteNo(t *testing.T) {
	c := newMetricsTestCluster(t, 2, 2)
	base := c.Stats()

	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE t SET v = 9 WHERE id = 3"); err != nil {
		t.Fatal(err)
	}
	// Fail one replica between the write and the commit: its PREPARE vote
	// comes back as a failure.
	if _, err := c.FailMachine(c.MachineIDs()[0]); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit should fail after participant death")
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("rollback after failed commit = %v, want ErrTxnDone", err)
	}

	st := c.Stats()
	if got := st.Aborted - base.Aborted; got != 1 {
		t.Fatalf("aborted delta = %d, want exactly 1", got)
	}
	s := c.Metrics().Snapshot()
	if got := s.Counter("core_2pc_vote_no_total"); got != 1 {
		t.Fatalf("vote-no rounds = %d, want 1", got)
	}
}

// TestCopyMetrics checks that Algorithm 1 phases land in the registry:
// starting and finishing a replica copy records phase transitions and dump
// durations.
func TestCopyMetrics(t *testing.T) {
	c := newMetricsTestCluster(t, 3, 2)
	target := ""
	for _, id := range c.MachineIDs() {
		hosts, err := c.Replicas("app")
		if err != nil {
			t.Fatal(err)
		}
		if !contains(hosts, id) {
			target = id
			break
		}
	}
	if target == "" {
		t.Fatal("no free machine for the copy target")
	}
	if err := c.CreateReplica("app", target); err != nil {
		t.Fatal(err)
	}
	s := c.Metrics().Snapshot()
	if got := s.Counter("core_copy_phase_total", "phase", "start"); got != 1 {
		t.Fatalf("copy starts = %d, want 1", got)
	}
	if got := s.Counter("core_copy_phase_total", "phase", "done"); got != 1 {
		t.Fatalf("copy dones = %d, want 1", got)
	}
	if got := s.Counter("core_copy_phase_total", "phase", "table_copied"); got == 0 {
		t.Fatal("no table_copied transitions")
	}
	h, ok := s.Histogram("core_copy_dump_seconds")
	if !ok || h.Count == 0 {
		t.Fatal("no dump durations recorded")
	}
	if got := s.Gauge("core_copies_running"); got != 0 {
		t.Fatalf("copies running gauge = %v after completion, want 0", got)
	}
	if evs := c.Metrics().Trace().ByID("app"); len(evs) < 3 {
		t.Fatalf("copy trace events = %d, want >= 3", len(evs))
	}
}
