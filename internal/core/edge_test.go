package core

import (
	"errors"
	"testing"
)

func TestAddMachineDuplicate(t *testing.T) {
	c := NewCluster("e", Options{})
	if _, err := c.AddMachine("m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddMachine("m1"); err == nil {
		t.Error("duplicate machine accepted")
	}
}

func TestTakeOverIdleIsNoop(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	if n := c.InTransit(); n != 0 {
		t.Errorf("in transit = %d", n)
	}
	committed, rolledBack := c.TakeOver()
	if committed != 0 || rolledBack != 0 {
		t.Errorf("idle takeover = (%d, %d)", committed, rolledBack)
	}
}

func TestDropDatabaseWithFailedReplica(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY)")
	reps, _ := c.Replicas("app")
	if _, err := c.FailMachine(reps[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.DropDatabase("app"); err != nil {
		t.Fatalf("drop with failed replica: %v", err)
	}
	if dbs := c.Databases(); len(dbs) != 0 {
		t.Errorf("databases = %v", dbs)
	}
}

func TestFailUnknownMachine(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	if _, err := c.FailMachine("m99"); !errors.Is(err, ErrNoMachine) {
		t.Errorf("err = %v", err)
	}
}

func TestBeginOnDatabaseWithNoLiveReplicas(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY)")
	for _, id := range c.MachineIDs() {
		_, _ = c.FailMachine(id)
	}
	// Begin succeeds (no state yet); the first operation fails cleanly.
	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("SELECT * FROM t"); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("read err = %v", err)
	}
	tx2, _ := c.Begin("app")
	if _, err := tx2.Exec("INSERT INTO t VALUES (1)"); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("write err = %v", err)
	}
}

func TestReadOnlyTransactionCommit(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY)")
	clusterExec(t, c, "INSERT INTO t VALUES (1)")
	tx, _ := c.Begin("app")
	for i := 0; i < 3; i++ {
		if _, err := tx.Exec("SELECT COUNT(*) FROM t"); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
	// Read-only commits bypass 2PC, so nothing should be in transit.
	if n := c.InTransit(); n != 0 {
		t.Errorf("in transit after read-only commit = %d", n)
	}
}

func TestGlobalIDsAreUnique(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		tx, err := c.Begin("app")
		if err != nil {
			t.Fatal(err)
		}
		if seen[tx.GlobalID()] {
			t.Fatalf("duplicate global ID %d", tx.GlobalID())
		}
		seen[tx.GlobalID()] = true
		_ = tx.Rollback()
	}
}

func TestUtilisationOfFreshMachine(t *testing.T) {
	c := NewCluster("e", Options{})
	m, err := c.AddMachine("m1")
	if err != nil {
		t.Fatal(err)
	}
	if u := m.utilisation(); u != 0 {
		t.Errorf("fresh machine utilisation = %v", u)
	}
	cap := m.Capacity()
	if cap.CPU != 1 || cap.Memory != 1 {
		t.Errorf("default capacity = %v", cap)
	}
}

func TestExplainThroughCluster(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 1)")
	res := clusterExec(t, c, "EXPLAIN SELECT v FROM t WHERE id = 1")
	if len(res.Rows) != 1 || res.Rows[0][1].Str != "point" {
		t.Errorf("plan = %v", res.Rows)
	}
	// EXPLAIN of a write still routes as a read (it executes nothing).
	res = clusterExec(t, c, "EXPLAIN UPDATE t SET v = 0 WHERE id = 1")
	if res.Rows[0][1].Str != "point" {
		t.Errorf("plan = %v", res.Rows)
	}
	got := clusterExec(t, c, "SELECT v FROM t WHERE id = 1")
	if got.Rows[0][0].Int != 1 {
		t.Errorf("EXPLAIN UPDATE modified data: %v", got.Rows[0][0])
	}
}
