package obs

import (
	"fmt"
	"io"
	"strings"
)

// MetricPoint is one instrument's value in a Snapshot: the family name,
// the label values (aligned with the family's label names), and exactly one
// of the value fields depending on Kind.
type MetricPoint struct {
	// Name is the metric family name.
	Name string `json:"name"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Labels maps label names to values; empty for unlabeled families.
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds counter and gauge readings.
	Value float64 `json:"value"`
	// Histogram holds the snapshot of histogram instruments (nil
	// otherwise).
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
	// Help is the family's registered description.
	Help string `json:"help,omitempty"`
}

// Snapshot is a consistent-enough point-in-time dump of a registry: every
// instrument's value, sorted by family name then label values, plus the
// trace ring. Counters packed in Pairs are consistent by construction;
// independent families are read one after another, as in any metrics pull.
type Snapshot struct {
	// Metrics lists every instrument's reading, sorted by name then labels.
	Metrics []MetricPoint `json:"metrics"`
	// Trace is the buffered span-event ring, oldest first.
	Trace []Event `json:"trace,omitempty"`
	// Spans is the buffered distributed-tracing span ring, oldest first.
	Spans []Span `json:"spans,omitempty"`
}

// Snapshot runs the registered hooks (bridging external statistics into
// gauges), then captures every instrument and the trace ring.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	add := func(p MetricPoint) {
		p.Help = r.help[p.Name]
		s.Metrics = append(s.Metrics, p)
	}
	for _, name := range sortedKeys(r.counters) {
		add(MetricPoint{Name: name, Kind: "counter", Value: float64(r.counters[name].Value())})
	}
	for _, name := range sortedKeys(r.gauges) {
		add(MetricPoint{Name: name, Kind: "gauge", Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.histograms) {
		hs := r.histograms[name].Snapshot()
		add(MetricPoint{Name: name, Kind: "histogram", Histogram: &hs})
	}
	for _, name := range sortedKeys(r.vecs) {
		fam := r.vecs[name]
		fam.each(func(values []string, inst any) {
			labels := make(map[string]string, len(fam.labels))
			for i, ln := range fam.labels {
				if i < len(values) {
					labels[ln] = values[i]
				}
			}
			switch v := inst.(type) {
			case *Counter:
				add(MetricPoint{Name: name, Kind: "counter", Labels: labels, Value: float64(v.Value())})
			case *Gauge:
				add(MetricPoint{Name: name, Kind: "gauge", Labels: labels, Value: v.Value()})
			case *Histogram:
				hs := v.Snapshot()
				add(MetricPoint{Name: name, Kind: "histogram", Labels: labels, Histogram: &hs})
			}
		})
	}
	s.Trace = r.tracer.Events()
	s.Spans = r.spans.Spans()
	return s
}

// labelString renders {k="v",...} with keys sorted, or "" for no labels.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for _, k := range sortedKeys(labels) {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// matches reports whether the point's labels include every want pair.
func (p MetricPoint) matches(name string, want map[string]string) bool {
	if p.Name != name {
		return false
	}
	for k, v := range want {
		if p.Labels[k] != v {
			return false
		}
	}
	return true
}

// Counter returns the summed value of the named counter family over every
// instrument matching the label pairs ("k", "v", "k2", "v2", ...). Missing
// families read as zero, so test assertions stay one-liners.
func (s Snapshot) Counter(name string, kv ...string) uint64 {
	want := pairsToMap(kv)
	var total uint64
	for _, p := range s.Metrics {
		if p.Kind == "counter" && p.matches(name, want) {
			total += uint64(p.Value)
		}
	}
	return total
}

// Gauge returns the first matching gauge's value, or 0 when absent.
func (s Snapshot) Gauge(name string, kv ...string) float64 {
	want := pairsToMap(kv)
	for _, p := range s.Metrics {
		if p.Kind == "gauge" && p.matches(name, want) {
			return p.Value
		}
	}
	return 0
}

// Histogram returns the first matching histogram snapshot and whether one
// was found.
func (s Snapshot) Histogram(name string, kv ...string) (HistogramSnapshot, bool) {
	want := pairsToMap(kv)
	for _, p := range s.Metrics {
		if p.Kind == "histogram" && p.matches(name, want) {
			return *p.Histogram, true
		}
	}
	return HistogramSnapshot{}, false
}

// pairsToMap folds ("k","v",...) variadic pairs into a map.
func pairsToMap(kv []string) map[string]string {
	if len(kv)%2 != 0 {
		panic("obs: label pairs must come in key/value pairs")
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// WriteText renders the snapshot in a human-readable text format: one line
// per counter/gauge, one line per histogram with count/mean/p50/p95/p99.
// Families are sorted, so diffs between two dumps line up.
func (s Snapshot) WriteText(w io.Writer) {
	lastName := ""
	for _, p := range s.Metrics {
		if p.Name != lastName && p.Help != "" {
			fmt.Fprintf(w, "# %s: %s\n", p.Name, p.Help)
		}
		lastName = p.Name
		switch p.Kind {
		case "histogram":
			h := p.Histogram
			unit := func(v float64) string { return fmt.Sprintf("%.3g", v) }
			if strings.HasSuffix(p.Name, "_seconds") {
				unit = fmtSeconds
			}
			fmt.Fprintf(w, "%s%s count=%d mean=%s p50=%s p95=%s p99=%s\n",
				p.Name, labelString(p.Labels), h.Count,
				unit(h.Mean()), unit(h.P50), unit(h.P95), unit(h.P99))
		case "gauge":
			fmt.Fprintf(w, "%s%s %g\n", p.Name, labelString(p.Labels), p.Value)
		default:
			fmt.Fprintf(w, "%s%s %d\n", p.Name, labelString(p.Labels), uint64(p.Value))
		}
	}
}

// fmtSeconds renders a seconds value with a readable unit.
func fmtSeconds(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.1fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.3fs", v)
	}
}
