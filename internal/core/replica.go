package core

import (
	"fmt"
	"time"

	"sdp/internal/sqldb"
)

// CreateReplica creates a new replica of db on the target machine while the
// database keeps serving transactions, implementing the paper's Algorithm 1:
//
//   - reads are never routed to the target (it only joins the replica set at
//     the end),
//   - writes to tables already copied execute on all machines including the
//     target,
//   - writes to the table currently being copied are rejected (and the
//     transaction aborted),
//   - writes to tables not yet copied execute on the old machines only.
//
// With database-granularity copying (Options.CopyGranularity), all tables
// are locked for the duration of the copy and every write to the database
// is rejected — less bookkeeping, more rejections, as in the paper's
// recovery experiments.
func (c *Cluster) CreateReplica(db, targetID string) error {
	c.mu.Lock()
	ds, ok := c.dbs[db]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	if ds.partitioned() {
		c.mu.Unlock()
		return fmt.Errorf("core: replica creation is not supported for partitioned database %s", db)
	}
	if ds.copying != nil {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrCopyInProgress, db)
	}
	if contains(ds.replicas, targetID) {
		c.mu.Unlock()
		return fmt.Errorf("core: %s already hosts %s", targetID, db)
	}
	target, ok := c.machines[targetID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoMachine, targetID)
	}
	if target.Failed() {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrMachineFailed, targetID)
	}
	if len(ds.replicas) == 0 {
		c.mu.Unlock()
		return ErrNoReplicas
	}
	sourceID := ds.replicas[0]
	source := c.machines[sourceID]
	cs := &copyState{
		source:  sourceID,
		target:  targetID,
		wholeDB: c.opts.CopyGranularity == sqldb.GranularityDatabase,
		copied:  make(map[string]bool),
	}
	ds.copying = cs
	c.mu.Unlock()

	if cp := c.ctl; cp != nil {
		// The copy's existence commits to the replicated log before any data
		// moves, so a controller taking over mid-copy knows to abort it
		// rather than leave the router rejecting writes forever.
		cp.mu.Lock()
		_, perr := cp.propose(ctlCmd{Op: ctlOpCopyBegin, DB: db, Source: sourceID, Target: targetID, WholeDB: cs.wholeDB})
		cp.mu.Unlock()
		if perr != nil {
			c.mu.Lock()
			ds.copying = nil
			c.mu.Unlock()
			c.metrics.copyPhase.With("abandoned").Inc()
			return perr
		}
	}

	m := c.metrics
	m.copyPhase.With("start").Inc()
	m.copiesRunning.Inc()
	defer m.copiesRunning.Dec()
	m.reg.TraceEvent("copy", db, "start", fmt.Sprintf("%s -> %s", sourceID, targetID))

	if err := c.netCall(c.endpoint, targetID, "copy_create_db", func() error {
		// The target may hold a stale copy of db left by an earlier copy
		// that aborted mid-flight (it is guaranteed not to be a current
		// replica — that was checked above): discard it and start clean.
		if contains(target.Engine().Databases(), db) {
			if derr := target.Engine().DropDatabase(db); derr != nil {
				return derr
			}
			target.dbCount.Add(-1)
		}
		return target.Engine().CreateDatabase(db)
	}); err != nil {
		c.abandonCopy(ds)
		return err
	}

	var err error
	if cs.wholeDB {
		err = c.copyWholeDB(ds, cs, source, target, db)
	} else {
		err = c.copyTableByTable(ds, cs, source, target, db)
	}
	if err != nil {
		c.abandonCopy(ds)
		_ = target.Engine().DropDatabase(db)
		return err
	}

	// The restore was physical and bypassed the target's log; checkpoint the
	// copied database so the log alone reproduces it on the target's next
	// restart. Databases the target already hosts are untouched.
	if target.Engine().WAL() != nil {
		if err := target.Engine().CheckpointDatabase(db); err != nil {
			c.abandonCopy(ds)
			_ = target.Engine().DropDatabase(db)
			return err
		}
	}

	c.mu.Lock()
	// A copy whose source or target failed mid-flight must not register the
	// half-copied destination (the FailMachine race: the target can die
	// after the last table landed but before this registration).
	if cs.aborted || target.Failed() {
		c.mu.Unlock()
		c.abandonCopy(ds)
		_ = target.Engine().DropDatabase(db)
		return fmt.Errorf("%w: %s -> %s", ErrCopyAborted, sourceID, targetID)
	}
	c.mu.Unlock()

	if cp := c.ctl; cp != nil {
		// Registration commits to the replicated log first: a takeover after
		// the commit sees the target as a full replica; before it, the copy
		// is aborted and the target discarded. Either way no controller ever
		// routes to a half-copied replica.
		cp.mu.Lock()
		_, perr := cp.propose(ctlCmd{Op: ctlOpCopyComplete, DB: db})
		if perr != nil {
			cp.mu.Unlock()
			c.abandonCopy(ds)
			_ = target.Engine().DropDatabase(db)
			return perr
		}
		c.mu.Lock()
		if !contains(ds.replicas, targetID) {
			ds.replicas = append(ds.replicas, targetID)
		}
		ds.copying = nil
		c.mu.Unlock()
		cp.mu.Unlock()
	} else {
		c.mu.Lock()
		if cs.aborted || target.Failed() {
			c.mu.Unlock()
			c.abandonCopy(ds)
			_ = target.Engine().DropDatabase(db)
			return fmt.Errorf("%w: %s -> %s", ErrCopyAborted, sourceID, targetID)
		}
		ds.replicas = append(ds.replicas, targetID)
		ds.copying = nil
		c.mu.Unlock()
	}
	target.dbCount.Add(1)
	m.copyPhase.With("done").Inc()
	m.reg.TraceEvent("copy", db, "done", targetID)
	return nil
}

// copyWholeDB performs a database-granularity copy: the dump transaction
// holds read locks on every table until the whole database is copied, and
// each table is restored on the target while the locks are held.
func (c *Cluster) copyWholeDB(ds *dbState, cs *copyState, source, target *Machine, db string) error {
	// Writes already enqueued before the copy state was installed must
	// finish before the dump locks the tables. New writes are rejected
	// (wholeDB), so every table's counter strictly drains.
	c.mu.Lock()
	counters := make([]*drainCounter, 0, len(ds.pending))
	for _, d := range ds.pending {
		counters = append(counters, d)
	}
	c.mu.Unlock()
	for _, d := range counters {
		d.wait()
	}
	c.metrics.reg.TraceEvent("copy", db, "db_locked", "")
	dumpStart := time.Now()
	defer func() { c.metrics.copyDump.ObserveDuration(time.Since(dumpStart)) }()
	err := c.netCall(c.endpoint, source.ID(), "copy_dump", func() error {
		_, derr := source.Engine().DumpDatabase(db, sqldb.GranularityDatabase, sqldb.DumpObserver{
			TableDone: func(_ string, d sqldb.TableDump) {
				// Errors surface via the outer dump error path below: a failed
				// restore leaves the target incomplete, and the final verify
				// catches it. The apply step crosses the source→target link;
				// RestoreTable is not idempotent (duplicate tables fail), so
				// the delivery is declared non-idempotent and never retried.
				_ = c.netCall(source.ID(), target.ID(), "copy_apply", func() error {
					return target.Engine().RestoreTable(db, d)
				})
			},
		})
		return derr
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	aborted := cs.aborted
	c.mu.Unlock()
	if aborted {
		return fmt.Errorf("%w: %s", ErrCopyAborted, db)
	}
	// Verify every table arrived.
	for _, tbl := range source.Engine().Tables(db) {
		if _, terr := target.Engine().Table(db, tbl); terr != nil {
			return fmt.Errorf("core: table %s missing on target after copy: %w", tbl, terr)
		}
	}
	return nil
}

// copyTableByTable performs a table-granularity copy, advancing Algorithm
// 1's copied-set/in-flight state table by table.
func (c *Cluster) copyTableByTable(ds *dbState, cs *copyState, source, target *Machine, db string) error {
	for _, tbl := range source.Engine().Tables(db) {
		// Mark the table in flight *before* taking its lock: from this
		// moment new writes to it are rejected, so once the in-flight
		// writes drain the lock acquisition races only with transactions
		// that already hold their locks (and strict 2PL orders us after
		// them).
		c.mu.Lock()
		if cs.aborted {
			c.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrCopyAborted, db)
		}
		cs.inFlight = tbl
		d := ds.pendingFor(lowerName(tbl))
		c.mu.Unlock()
		c.metrics.copyPhase.With("table_inflight").Inc()
		c.metrics.reg.TraceEvent("copy", db, "table_inflight", tbl)

		d.wait()

		dumpStart := time.Now()
		err := c.netCall(c.endpoint, source.ID(), "copy_dump", func() error {
			return source.Engine().DumpTableWith(db, tbl, func(d sqldb.TableDump) error {
				return c.netCall(source.ID(), target.ID(), "copy_apply", func() error {
					return target.Engine().RestoreTable(db, d)
				})
			})
		})
		c.metrics.copyDump.ObserveDuration(time.Since(dumpStart))
		if err != nil {
			return err
		}

		c.mu.Lock()
		cs.copied[lowerName(tbl)] = true
		cs.inFlight = ""
		c.mu.Unlock()
		c.metrics.copyPhase.With("table_copied").Inc()
		c.metrics.reg.TraceEvent("copy", db, "table_copied", tbl)
	}
	return nil
}

// abandonCopy clears the copy state after a failed replica creation,
// retiring the replicated copy record (best effort — a takeover's
// reconciliation retires orphaned records anyway).
func (c *Cluster) abandonCopy(ds *dbState) {
	c.mu.Lock()
	ds.copying = nil
	c.mu.Unlock()
	if cp := c.ctl; cp != nil {
		cp.mu.Lock()
		_, _ = cp.propose(ctlCmd{Op: ctlOpCopyAbort, DB: ds.name})
		cp.mu.Unlock()
	}
	c.metrics.copyPhase.With("abandoned").Inc()
	c.metrics.reg.TraceEvent("copy", ds.name, "abandoned", "")
}
