package sqldb

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Rows are stored on disk-format pages: a compact binary encoding of up to
// pageCapacity (rowID, row) pairs. The buffer pool caches *decoded* pages;
// serving a read from an encoded page pays a real decode cost (plus an
// optional simulated disk latency), which is what makes buffer-pool locality
// — and therefore the paper's read-routing options — performance-visible.

// pageCapacity is the number of row slots per page.
const pageCapacity = 64

// encodeRow appends the binary encoding of a row to buf.
func encodeRow(buf []byte, r Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		buf = append(buf, byte(v.Typ))
		switch v.Typ {
		case TypeNull:
		case TypeInt:
			buf = binary.AppendVarint(buf, v.Int)
		case TypeFloat:
			buf = binary.AppendUvarint(buf, math.Float64bits(v.Float))
		case TypeText:
			buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
			buf = append(buf, v.Str...)
		case TypeBool:
			if v.Bool {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// decodeRow decodes one row from buf, returning the row and remaining bytes.
func decodeRow(buf []byte) (Row, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("sqldb: corrupt page: bad row arity")
	}
	buf = buf[sz:]
	r := make(Row, n)
	for i := range r {
		if len(buf) == 0 {
			return nil, nil, fmt.Errorf("sqldb: corrupt page: truncated row")
		}
		typ := Type(buf[0])
		buf = buf[1:]
		switch typ {
		case TypeNull:
			r[i] = Null
		case TypeInt:
			v, sz := binary.Varint(buf)
			if sz <= 0 {
				return nil, nil, fmt.Errorf("sqldb: corrupt page: bad int")
			}
			buf = buf[sz:]
			r[i] = NewInt(v)
		case TypeFloat:
			bits, sz := binary.Uvarint(buf)
			if sz <= 0 {
				return nil, nil, fmt.Errorf("sqldb: corrupt page: bad float")
			}
			buf = buf[sz:]
			r[i] = NewFloat(math.Float64frombits(bits))
		case TypeText:
			l, sz := binary.Uvarint(buf)
			if sz <= 0 || uint64(len(buf)-sz) < l {
				return nil, nil, fmt.Errorf("sqldb: corrupt page: bad string")
			}
			buf = buf[sz:]
			r[i] = NewText(string(buf[:l]))
			buf = buf[l:]
		case TypeBool:
			if len(buf) == 0 {
				return nil, nil, fmt.Errorf("sqldb: corrupt page: bad bool")
			}
			r[i] = NewBool(buf[0] != 0)
			buf = buf[1:]
		default:
			return nil, nil, fmt.Errorf("sqldb: corrupt page: unknown type %d", typ)
		}
	}
	return r, buf, nil
}

// pageSlot is one occupied slot on a decoded page.
type pageSlot struct {
	rowID uint64
	row   Row
}

// encodePage serialises the occupied slots of a page.
func encodePage(slots []pageSlot) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(slots)))
	for _, s := range slots {
		buf = binary.AppendUvarint(buf, s.rowID)
		buf = encodeRow(buf, s.row)
	}
	return buf
}

// decodePage parses a page encoding back into slots.
func decodePage(buf []byte) ([]pageSlot, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("sqldb: corrupt page: bad slot count")
	}
	buf = buf[sz:]
	slots := make([]pageSlot, 0, n)
	for i := uint64(0); i < n; i++ {
		id, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("sqldb: corrupt page: bad row id")
		}
		buf = buf[sz:]
		row, rest, err := decodeRow(buf)
		if err != nil {
			return nil, err
		}
		buf = rest
		slots = append(slots, pageSlot{rowID: id, row: row})
	}
	return slots, nil
}
