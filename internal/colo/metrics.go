package colo

import "sdp/internal/obs"

// coloMetrics holds the colo controller's resolved instruments. Families
// are labeled by colo name because several colos usually share one
// platform-wide registry (see sdp.Platform).
type coloMetrics struct {
	reg *obs.Registry

	clustersFormed      *obs.Counter
	machinesProvisioned *obs.Counter
	placements          *obs.CounterVec
	machineFailures     *obs.Counter
	freeMachines        *obs.Gauge
}

// newColoMetrics resolves the colo's instruments on reg, labeled with the
// colo's name.
func newColoMetrics(reg *obs.Registry, name string) *coloMetrics {
	return &coloMetrics{
		reg: reg,

		clustersFormed: reg.CounterVec("colo_clusters_formed_total",
			"Clusters formed by the colo controller", "colo").With(name),
		machinesProvisioned: reg.CounterVec("colo_machines_provisioned_total",
			"Machines moved from the free pool into clusters", "colo").With(name),
		placements: reg.CounterVec("colo_placement_total",
			"Database placements attempted by the colo, by result", "colo", "result"),
		machineFailures: reg.CounterVec("colo_machine_failures_total",
			"Machine failures handled (failure + recovery runs)", "colo").With(name),
		freeMachines: reg.GaugeVec("colo_free_machines",
			"Machines currently in the colo's free pool", "colo").With(name),
	}
}
