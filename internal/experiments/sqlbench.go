package experiments

import (
	"fmt"
	"runtime"
	"time"

	"sdp/internal/core"
	"sdp/internal/obs"
	"sdp/internal/sqldb"
	"sdp/internal/tpcw"
)

// SQLBench holds the hot-path microbenchmark results tracked across
// revisions of the query engine (see DESIGN.md, "Performance architecture").
// The three ns/op numbers correspond to BenchmarkSQLPointRead,
// BenchmarkClusterReplicatedWrite and BenchmarkTPCWMixSingleEngine; the JSON
// form is what cmd/experiments -bench-sqldb writes to BENCH_sqldb.json.
type SQLBench struct {
	PointReadNsPerOp       float64 `json:"point_read_ns_per_op"`
	PointReadAllocsPerOp   float64 `json:"point_read_allocs_per_op"`
	ReplicatedWriteNsPerOp float64 `json:"replicated_write_ns_per_op"`
	TPCWMixNsPerOp         float64 `json:"tpcw_mix_ns_per_op"`
	TPCWMixTPS             float64 `json:"tpcw_mix_tps"`
	PlanCacheHitRate       float64 `json:"plan_cache_hit_rate"`
	// CompiledFraction is the share of statements served by the compiled
	// executor across the bench engines (compiled_exec_total/stmt_exec_total).
	CompiledFraction float64 `json:"compiled_fraction"`
	Iterations       int     `json:"iterations"`
	// Tracing overhead: the point-read loop on an engine with a span ring
	// attached, with sampling off (the production default — every recording
	// site short-circuits on the zero trace context) and with every call
	// traced. TraceOverheadPct is the on-vs-off regression in percent.
	PointReadTracingOffNsPerOp float64 `json:"point_read_tracing_off_ns_per_op"`
	PointReadTracingOnNsPerOp  float64 `json:"point_read_tracing_on_ns_per_op"`
	TraceOverheadPct           float64 `json:"trace_overhead_pct"`
}

// benchEngineDB adapts one database of a single engine to tpcw.DB.
type benchEngineDB struct {
	e  *sqldb.Engine
	db string
}

func (d benchEngineDB) Begin() (tpcw.Txn, error) { return d.e.Begin(d.db) }

// BeginReadOnly routes the read-only TPC-W profiles onto the engine's
// optimistic lock-free read path, as the benchmark harness does.
func (d benchEngineDB) BeginReadOnly() (tpcw.Txn, error) { return d.e.BeginReadOnly(d.db) }

// sqlBenchIters picks the per-benchmark iteration count.
func (c Config) sqlBenchIters() int {
	if c.Quick {
		return 2000
	}
	return 50000
}

// RunSQLBench measures the three headline hot-path latencies: a single-engine
// primary-key point read, a replicated single-row update through the cluster
// controller (2 replicas, 2PC), and one mix-weighted TPC-W transaction on a
// single engine. Each is reported as mean ns/op over the configured number of
// iterations, after a warmup that fills the buffer pool and the plan caches.
// The returned snapshot carries every engine's and the bench cluster's
// metrics; cmd/experiments writes it next to BENCH_sqldb.json.
func RunSQLBench(cfg Config) (SQLBench, obs.Snapshot, error) {
	iters := cfg.sqlBenchIters()
	res := SQLBench{Iterations: iters}
	reg := obs.NewRegistry()

	// Point read: the same loop as BenchmarkSQLPointRead.
	e := sqldb.NewEngine(sqldb.DefaultConfig())
	bridgeEngine(reg, "bench_point", e)
	if err := e.CreateDatabase("app"); err != nil {
		return res, obs.Snapshot{}, err
	}
	if _, err := e.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		return res, obs.Snapshot{}, err
	}
	for i := 0; i < 1000; i++ {
		if _, err := e.Exec("app", fmt.Sprintf("INSERT INTO t VALUES (%d, 'val%d')", i, i)); err != nil {
			return res, obs.Snapshot{}, err
		}
	}
	stmt, err := sqldb.Parse("SELECT v FROM t WHERE id = ?")
	if err != nil {
		return res, obs.Snapshot{}, err
	}
	var pointRes sqldb.Result
	params := []sqldb.Value{sqldb.NewInt(0)}
	point := func(i int) error {
		tx, err := e.BeginReadOnly("app")
		if err != nil {
			return err
		}
		params[0] = sqldb.NewInt(int64(i % 1000))
		if err := tx.ExecStmtInto(&pointRes, stmt, params...); err != nil {
			return err
		}
		return tx.Commit()
	}
	for i := 0; i < 200; i++ { // warmup
		if err := point(i); err != nil {
			return res, obs.Snapshot{}, err
		}
	}
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := point(i); err != nil {
			return res, obs.Snapshot{}, err
		}
	}
	res.PointReadNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(iters)
	runtime.ReadMemStats(&msAfter)
	res.PointReadAllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(iters)
	st := e.Stats().PlanCache
	res.PlanCacheHitRate = st.HitRate()

	// Tracing overhead: the same point-read loop on an engine with a span
	// ring attached, unsampled (zero context on every transaction) and then
	// with every call traced.
	tcfg := sqldb.DefaultConfig()
	tcfg.Spans = reg.Spans()
	et := sqldb.NewEngine(tcfg)
	if err := et.CreateDatabase("app"); err != nil {
		return res, obs.Snapshot{}, err
	}
	if _, err := et.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		return res, obs.Snapshot{}, err
	}
	for i := 0; i < 1000; i++ {
		if _, err := et.Exec("app", fmt.Sprintf("INSERT INTO t VALUES (%d, 'val%d')", i, i)); err != nil {
			return res, obs.Snapshot{}, err
		}
	}
	tracedPoint := func(i int, tc obs.SpanContext) error {
		tx, err := et.BeginReadOnly("app")
		if err != nil {
			return err
		}
		tx.SetTraceContext(tc)
		params[0] = sqldb.NewInt(int64(i % 1000))
		if err := tx.ExecStmtInto(&pointRes, stmt, params...); err != nil {
			return err
		}
		return tx.Commit()
	}
	for i := 0; i < 200; i++ { // warmup
		if err := tracedPoint(i, obs.SpanContext{}); err != nil {
			return res, obs.Snapshot{}, err
		}
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := tracedPoint(i, obs.SpanContext{}); err != nil {
			return res, obs.Snapshot{}, err
		}
	}
	res.PointReadTracingOffNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(iters)
	start = time.Now()
	for i := 0; i < iters; i++ {
		tid := obs.NewTraceID()
		if err := tracedPoint(i, obs.SpanContext{TraceID: tid, SpanID: tid, Sampled: true}); err != nil {
			return res, obs.Snapshot{}, err
		}
	}
	res.PointReadTracingOnNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(iters)
	if res.PointReadTracingOffNsPerOp > 0 {
		res.TraceOverheadPct = (res.PointReadTracingOnNsPerOp - res.PointReadTracingOffNsPerOp) /
			res.PointReadTracingOffNsPerOp * 100
	}

	// Replicated write: the same loop as BenchmarkClusterReplicatedWrite.
	c := core.NewCluster("bench", core.Options{Replicas: 2, Metrics: reg})
	if _, err := c.AddMachines(2); err != nil {
		return res, obs.Snapshot{}, err
	}
	if err := c.CreateDatabase("app"); err != nil {
		return res, obs.Snapshot{}, err
	}
	if _, err := c.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		return res, obs.Snapshot{}, err
	}
	if _, err := c.Exec("app", "INSERT INTO t VALUES (1, 0)"); err != nil {
		return res, obs.Snapshot{}, err
	}
	wIters := iters / 5
	for i := 0; i < 100; i++ { // warmup
		if _, err := c.Exec("app", "UPDATE t SET v = v + 1 WHERE id = 1"); err != nil {
			return res, obs.Snapshot{}, err
		}
	}
	start = time.Now()
	for i := 0; i < wIters; i++ {
		if _, err := c.Exec("app", "UPDATE t SET v = v + 1 WHERE id = 1"); err != nil {
			return res, obs.Snapshot{}, err
		}
	}
	res.ReplicatedWriteNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(wIters)

	// TPC-W mix: the same loop as BenchmarkTPCWMixSingleEngine.
	te := sqldb.NewEngine(sqldb.DefaultConfig())
	bridgeEngine(reg, "bench_tpcw", te)
	if err := te.CreateDatabase("tpcw"); err != nil {
		return res, obs.Snapshot{}, err
	}
	db := benchEngineDB{e: te, db: "tpcw"}
	sc := tpcw.SmallScale(1)
	if err := tpcw.Load(db, sc); err != nil {
		return res, obs.Snapshot{}, err
	}
	client := &tpcw.Client{DB: db, Mix: tpcw.ShoppingMix, Workload: tpcw.NewWorkload(sc)}
	_ = client.RunN(1, 200) // warmup
	mixIters := iters / 2
	stats := client.RunN(cfg.Seed, mixIters)
	if stats.Fatal > 0 {
		return res, obs.Snapshot{}, fmt.Errorf("experiments: fatal errors in TPC-W bench run")
	}
	res.TPCWMixNsPerOp = float64(stats.Elapsed.Nanoseconds()) / float64(mixIters)
	res.TPCWMixTPS = stats.TPS()
	pointStats, tpcwStats := e.Stats(), te.Stats()
	if total := pointStats.StmtExecs + tpcwStats.StmtExecs; total > 0 {
		res.CompiledFraction = float64(pointStats.CompiledExecs+tpcwStats.CompiledExecs) / float64(total)
	}
	return res, reg.Snapshot(), nil
}
