package experiments

import (
	"os"
	"strconv"
	"testing"
)

// TestChaosQuick runs one short chaos soak — TPC-W traffic under randomized
// network faults, partitions, and machine crashes — and fails on any
// invariant violation (serialization-graph cycle, replica divergence, leaked
// locks, or a fatal error surfaced to a client). The seed comes from
// SDP_CHAOS_SEED so the nightly soak can sweep a seed matrix; a failing seed
// reproduces the exact fault schedule.
func TestChaosQuick(t *testing.T) {
	seed := int64(1)
	if v := os.Getenv("SDP_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad SDP_CHAOS_SEED %q: %v", v, err)
		}
		seed = n
	}
	rep, err := RunChaos(ChaosConfig{Seed: seed, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() || !rep.Passed() {
		rep.WriteText(os.Stderr)
	}
	if !rep.Passed() {
		t.Fatalf("chaos seed %d: %d invariant violations", seed, len(rep.Violations))
	}
}

// TestChaosControllerFailover is the controller-chaos regression: a pinned
// seed whose schedule kills consensus leaders under TPC-W load — immediately
// and armed to fire inside the 2PC PREPARE window or mid Algorithm 1 copy —
// while the usual machine crashes, partitions, and lossiness run alongside.
// The run must hold every invariant (one-copy serializability, replica and
// controller-state convergence, no leaked locks), actually exercise at least
// one controller kill, and keep committing after failovers.
func TestChaosControllerFailover(t *testing.T) {
	rep, err := RunChaos(ChaosConfig{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() || !rep.Passed() {
		rep.WriteText(os.Stderr)
	}
	if !rep.Passed() {
		t.Fatalf("chaos seed 42: %d invariant violations", len(rep.Violations))
	}
	if rep.CtlKills == 0 {
		t.Error("seed 42 injected no controller kills; it no longer regression-tests failover — pick a new seed")
	}
	if rep.Committed == 0 {
		t.Error("no transactions committed: the cluster never resumed after failover")
	}
}
