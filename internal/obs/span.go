package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// spanIDs hands out trace and span IDs. It is seeded from the wall clock at
// process start so IDs minted by different processes (a pooled wire client
// and the server it talks to) land in disjoint ranges with overwhelming
// probability, letting both sides contribute spans to one trace without
// coordination.
var spanIDs atomic.Uint64

func init() {
	spanIDs.Store(uint64(time.Now().UnixNano()))
}

// NewTraceID mints a process-unique non-zero trace or span ID.
func NewTraceID() uint64 {
	for {
		if id := spanIDs.Add(1); id != 0 {
			return id
		}
	}
}

// SpanContext is the trace position a request carries across layer (and
// process) boundaries: which trace it belongs to, which span is its parent
// on the far side, and whether the trace was head-sampled. The zero value
// means "not traced"; every recording site checks Sampled first, so an
// unsampled request pays one branch and nothing else.
type SpanContext struct {
	// TraceID ties all spans of one client call together.
	TraceID uint64
	// SpanID is the current span — the parent of any span started under
	// this context.
	SpanID uint64
	// Sampled is the head-sampling decision, made once at the edge and
	// propagated; downstream layers never re-decide.
	Sampled bool
}

// Traced reports whether the context carries a sampled trace.
func (c SpanContext) Traced() bool { return c.Sampled && c.TraceID != 0 }

// Child returns a context for a new span under this one, minting a fresh
// span ID. The zero (unsampled) context returns itself.
func (c SpanContext) Child() SpanContext {
	if !c.Traced() {
		return c
	}
	return SpanContext{TraceID: c.TraceID, SpanID: NewTraceID(), Sampled: true}
}

// TraceIDString renders a trace or span ID the way operators see it in
// /tracez, the slow-query log, and Prometheus exemplars.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// Span is one completed timed operation inside a trace: where the request
// spent part of its time. Spans are recorded at completion (start + measured
// duration), so a ring holds only finished work.
type Span struct {
	// TraceID ties the span to its trace.
	TraceID uint64 `json:"trace_id"`
	// SpanID identifies this span within the trace.
	SpanID uint64 `json:"span_id"`
	// Parent is the enclosing span's ID, 0 for a root span.
	Parent uint64 `json:"parent,omitempty"`
	// Scope names the layer that recorded the span: "client", "wire",
	// "txn", "2pc", "read", "sql", "wal".
	Scope string `json:"scope"`
	// Name is the operation within the scope (statement kind, machine ID,
	// 2PC phase).
	Name string `json:"name"`
	// DB is the tenant database the span worked for.
	DB string `json:"db,omitempty"`
	// Start is when the operation began.
	Start time.Time `json:"start"`
	// Duration is how long it took.
	Duration time.Duration `json:"duration_ns"`
	// Detail is optional free-form context (exec mode, participant count).
	Detail string `json:"detail,omitempty"`
}

// SpanRing is a bounded ring of completed spans, the span-tree counterpart
// of the event Tracer: recording takes one short mutex-guarded append, a
// full ring overwrites its oldest span (counting the overwrite on the
// dropped counter so overflow is visible), and reads are wrap-aware. A nil
// SpanRing is valid and discards spans.
type SpanRing struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool

	// total and dropped, when set, count every span recorded and every
	// span overwritten before it was read out (ring overflow).
	total   *Counter
	dropped *Counter
}

// NewSpanRing creates a ring holding up to capacity spans; capacity <= 0
// selects DefaultTraceCapacity. total and dropped may be nil.
func NewSpanRing(capacity int, total, dropped *Counter) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &SpanRing{buf: make([]Span, capacity), total: total, dropped: dropped}
}

// Record appends one completed span to the ring.
func (r *SpanRing) Record(sp Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.full && r.dropped != nil {
		r.dropped.Inc()
	}
	r.buf[r.next] = sp
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	if r.total != nil {
		r.total.Inc()
	}
}

// Cap returns the ring's capacity.
func (r *SpanRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Len returns the number of buffered spans.
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// eachLocked visits the buffered spans oldest first. Caller holds r.mu.
func (r *SpanRing) eachLocked(fn func(*Span)) {
	if r.full {
		for i := r.next; i < len(r.buf); i++ {
			fn(&r.buf[i])
		}
	}
	for i := 0; i < r.next; i++ {
		fn(&r.buf[i])
	}
}

// Spans returns the buffered spans in recording order (oldest first).
func (r *SpanRing) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	r.eachLocked(func(s *Span) { out = append(out, *s) })
	return out
}

// ByTrace returns the buffered spans of one trace, oldest first. Like
// Tracer.EventsFiltered, a counting pass sizes the result exactly so the
// only allocation is the returned slice (nil when the trace is unknown).
func (r *SpanRing) ByTrace(traceID uint64) []Span {
	if r == nil || traceID == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	r.eachLocked(func(s *Span) {
		if s.TraceID == traceID {
			n++
		}
	})
	if n == 0 {
		return nil
	}
	out := make([]Span, 0, n)
	r.eachLocked(func(s *Span) {
		if s.TraceID == traceID {
			out = append(out, *s)
		}
	})
	return out
}

// WriteTrace renders one trace's span tree (see WriteSpanTree) from the
// ring's current contents.
func (r *SpanRing) WriteTrace(w io.Writer, traceID uint64) {
	WriteSpanTree(w, r.ByTrace(traceID))
}

// spanNode is one tree position during rendering.
type spanNode struct {
	span     *Span
	children []*spanNode
}

// buildSpanTree links spans into parent→child trees. A span whose parent is
// 0 or absent from the set (evicted from the ring, or recorded by a process
// whose ring we cannot see) becomes a root, so partial traces still render.
func buildSpanTree(spans []Span) []*spanNode {
	nodes := make(map[uint64]*spanNode, len(spans))
	for i := range spans {
		nodes[spans[i].SpanID] = &spanNode{span: &spans[i]}
	}
	var roots []*spanNode
	for i := range spans {
		n := nodes[spans[i].SpanID]
		if p, ok := nodes[spans[i].Parent]; ok && spans[i].Parent != spans[i].SpanID {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(ns []*spanNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].span.Start.Before(ns[j].span.Start) })
	}
	byStart(roots)
	for _, n := range nodes {
		byStart(n.children)
	}
	return roots
}

// WriteSpanTree renders spans as an indented tree, children under parents,
// each line carrying the span's scope:name, tenant database, duration, and
// detail — the "where did these microseconds go" view of one request.
func WriteSpanTree(w io.Writer, spans []Span) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	fmt.Fprintf(w, "trace %s (%d spans)\n", TraceIDString(spans[0].TraceID), len(spans))
	var walk func(n *spanNode, depth int)
	walk = func(n *spanNode, depth int) {
		sp := n.span
		detail := ""
		if sp.Detail != "" {
			detail = "  " + sp.Detail
		}
		db := ""
		if sp.DB != "" {
			db = " db=" + sp.DB
		}
		fmt.Fprintf(w, "%*s%s:%s%s %s%s\n", 2*depth+2, "", sp.Scope, sp.Name, db, sp.Duration, detail)
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	for _, root := range buildSpanTree(spans) {
		walk(root, 0)
	}
}

// Sampler makes head-based per-tenant sampling decisions: an interval
// derived from the configured fraction, counted separately per tenant
// database, so a chatty tenant cannot crowd every other tenant out of the
// span ring. The first call for a tenant always samples (rate-1 visibility
// for rarely-seen tenants); thereafter every interval-th call does.
// Decisions are deterministic, which keeps tests and demos reproducible.
// A nil Sampler never samples.
type Sampler struct {
	interval uint64
	mu       sync.Mutex
	counts   map[string]uint64
}

// NewSampler creates a sampler from a sampling fraction: <= 0 never
// samples, >= 1 always samples, and an intermediate fraction f samples
// roughly one in round(1/f) calls per tenant.
func NewSampler(fraction float64) *Sampler {
	switch {
	case fraction <= 0:
		return &Sampler{interval: 0}
	case fraction >= 1:
		return &Sampler{interval: 1, counts: make(map[string]uint64)}
	default:
		n := uint64(1/fraction + 0.5)
		if n < 1 {
			n = 1
		}
		return &Sampler{interval: n, counts: make(map[string]uint64)}
	}
}

// Sample decides whether the next request of the given tenant is traced.
func (s *Sampler) Sample(tenant string) bool {
	if s == nil || s.interval == 0 {
		return false
	}
	if s.interval == 1 {
		return true
	}
	s.mu.Lock()
	n := s.counts[tenant]
	s.counts[tenant] = n + 1
	s.mu.Unlock()
	return n%s.interval == 0
}
