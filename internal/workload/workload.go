// Package workload provides deterministic random-workload generators for
// the evaluation: bounded Zipfian samplers (database sizes and throughput
// requirements in Table 2, item popularity in TPC-W) and helpers for
// synthesising SLA workloads.
package workload

import (
	"math"
	"math/rand"
)

// Zipf samples ranks 1..N with P(k) ∝ 1/k^s. Unlike math/rand's Zipf it
// supports any s >= 0 (including s <= 1) and is seeded explicitly so
// experiments are reproducible.
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds a sampler over n ranks with skew s (s = 0 is uniform).
func NewZipf(seed int64, n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rand.New(rand.NewSource(seed)), cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank samples a rank in [1, N]; rank 1 is the most probable.
func (z *Zipf) Rank() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// InRange maps a sampled rank onto [lo, hi]: rank 1 maps to lo, rank N to
// hi. With positive skew the mass concentrates near lo, which is how the
// paper's Table 2 average database size falls as the skew factor rises.
func (z *Zipf) InRange(lo, hi float64) float64 {
	if len(z.cdf) == 1 {
		return lo
	}
	k := z.Rank()
	frac := float64(k-1) / float64(len(z.cdf)-1)
	return lo + (hi-lo)*frac
}

// Rand exposes the underlying deterministic PRNG for auxiliary draws.
func (z *Zipf) Rand() *rand.Rand { return z.rng }

// SLAWorkload is one synthesised multi-tenant workload for the Table 2
// experiment: per-database sizes (MB) and throughput requirements (TPS).
type SLAWorkload struct {
	SizesMB []float64
	TPS     []float64
}

// AvgSizeMB returns the mean database size.
func (w SLAWorkload) AvgSizeMB() float64 { return mean(w.SizesMB) }

// AvgTPS returns the mean throughput requirement.
func (w SLAWorkload) AvgTPS() float64 { return mean(w.TPS) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// NewSLAWorkload draws n databases with sizes Zipf-distributed over
// [200,1000] MB and throughputs over [0.1,10] TPS, both with the given skew
// factor — the exact parameterisation of the paper's Table 2.
func NewSLAWorkload(seed int64, n int, skew float64) SLAWorkload {
	sizes := NewZipf(seed, 64, skew)
	tps := NewZipf(seed+1, 64, skew)
	w := SLAWorkload{SizesMB: make([]float64, n), TPS: make([]float64, n)}
	for i := 0; i < n; i++ {
		w.SizesMB[i] = sizes.InRange(200, 1000)
		w.TPS[i] = tps.InRange(0.1, 10)
	}
	return w
}
