package core

import (
	"sync"
	"testing"
	"time"

	"sdp/internal/history"
	"sdp/internal/sqldb"
)

// runAdversarialTrials drives pairs of transactions shaped like the paper's
// Section 3.1 example — T1: r(x) w(y), T2: r(y) w(x) — against a two-machine
// cluster under the given read option and ack mode, and returns the number
// of serializability violations found by the history checker.
//
// Per Table 1 the expectation is: zero violations for every option with a
// conservative controller and for Option 1 with an aggressive controller;
// violations possible (and in practice frequent) for Options 2 and 3 with an
// aggressive controller.
func runAdversarialTrials(t *testing.T, opt ReadOption, mode AckMode, trials int) int {
	t.Helper()
	rec := history.NewRecorder()
	cfg := sqldb.DefaultConfig()
	cfg.LockTimeout = 50 * time.Millisecond
	c := NewCluster("t1", Options{
		ReadOption:   opt,
		AckMode:      mode,
		Replicas:     2,
		EngineConfig: cfg,
		Recorder:     rec,
	})
	if _, err := c.AddMachines(2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("app", "CREATE TABLE obj (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("app", "INSERT INTO obj VALUES (1, 0), (2, 0)"); err != nil {
		t.Fatal(err)
	}

	violations := 0
	for trial := 0; trial < trials; trial++ {
		rec.Reset()

		run := func(readID, writeID int) {
			tx, err := c.Begin("app")
			if err != nil {
				return
			}
			if _, err := tx.Exec("SELECT v FROM obj WHERE id = ?", sqldb.NewInt(int64(readID))); err != nil {
				return // aborted (deadlock/timeout); excluded from the check
			}
			if _, err := tx.Exec("UPDATE obj SET v = v + 1 WHERE id = ?", sqldb.NewInt(int64(writeID))); err != nil {
				return
			}
			_ = tx.Commit()
		}

		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); run(1, 2) }() // T1: r(x) w(y)
		go func() { defer wg.Done(); run(2, 1) }() // T2: r(y) w(x)
		wg.Wait()

		if ok, _, _ := history.Check(rec); !ok {
			violations++
		}
	}
	return violations
}

func TestTable1ConservativeAlwaysSerializable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	for _, opt := range []ReadOption{ReadOption1, ReadOption2, ReadOption3} {
		t.Run(opt.String(), func(t *testing.T) {
			if v := runAdversarialTrials(t, opt, Conservative, 30); v != 0 {
				t.Errorf("conservative %s: %d violations, want 0 (Theorem 2)", opt, v)
			}
		})
	}
}

func TestTable1AggressiveOption1Serializable(t *testing.T) {
	if v := runAdversarialTrials(t, ReadOption1, Aggressive, 60); v != 0 {
		t.Errorf("aggressive option1: %d violations, want 0 (Theorem 1)", v)
	}
}

func TestTable1AggressiveOption2And3NotSerializable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	// The anomaly is a race; it does not fire on every trial, but over
	// enough trials it must appear for Options 2 and 3.
	total := 0
	for _, opt := range []ReadOption{ReadOption2, ReadOption3} {
		v := runAdversarialTrials(t, opt, Aggressive, 150)
		t.Logf("aggressive %s: %d violations in 150 trials", opt, v)
		total += v
	}
	if total == 0 {
		t.Error("aggressive options 2/3 produced no serializability violations; the paper's anomaly did not reproduce")
	}
}

// TestAnomalyRequiresPrepareOptimisation is the ablation the paper implies:
// with the release-read-locks-at-PREPARE optimisation disabled, even the
// aggressive controller with Options 2/3 cannot produce the anomaly, because
// strict 2PL + 2PC then guarantee one-copy serializability.
func TestAnomalyRequiresPrepareOptimisation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	rec := history.NewRecorder()
	cfg := sqldb.DefaultConfig()
	cfg.LockTimeout = 50 * time.Millisecond
	cfg.ReleaseReadLocksAtPrepare = false
	c := NewCluster("ablate", Options{
		ReadOption:   ReadOption3,
		AckMode:      Aggressive,
		Replicas:     2,
		EngineConfig: cfg,
		Recorder:     rec,
	})
	if _, err := c.AddMachines(2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("app", "CREATE TABLE obj (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("app", "INSERT INTO obj VALUES (1, 0), (2, 0)"); err != nil {
		t.Fatal(err)
	}

	violations := 0
	for trial := 0; trial < 50; trial++ {
		rec.Reset()
		var wg sync.WaitGroup
		run := func(readID, writeID int64) {
			defer wg.Done()
			tx, err := c.Begin("app")
			if err != nil {
				return
			}
			if _, err := tx.Exec("SELECT v FROM obj WHERE id = ?", sqldb.NewInt(readID)); err != nil {
				return
			}
			if _, err := tx.Exec("UPDATE obj SET v = v + 1 WHERE id = ?", sqldb.NewInt(writeID)); err != nil {
				return
			}
			_ = tx.Commit()
		}
		wg.Add(2)
		go run(1, 2)
		go run(2, 1)
		wg.Wait()
		if ok, _, _ := history.Check(rec); !ok {
			violations++
		}
	}
	if violations != 0 {
		t.Errorf("without the prepare optimisation: %d violations, want 0", violations)
	}
}
