package sqldb

import (
	"encoding/binary"
	"fmt"
	"math"

	"sdp/internal/wal"
)

// Binary encoding of a checkpoint table image, carried as the Data of a
// RecCheckpointTable frame:
//
//	image  := table(string) ncols(uvarint) col* pk(uvarint+1)
//	          nidx(uvarint) idx* nrows(uvarint) row*
//	col    := name(string) type(uvarint) flags(uint8)   // 1 PK, 2 NOT NULL, 4 UNIQUE
//	idx    := name(string) col(string) unique(uint8)
//	row    := value*                                    // one per column
//	value  := type(uint8) payload
//
// Value payloads: NULL none, INT zigzag varint, FLOAT 8-byte IEEE bits,
// TEXT length-prefixed bytes, BOOL one byte.

// encodeTableImage serialises a table dump for a checkpoint frame.
func encodeTableImage(d TableDump) []byte {
	buf := wal.AppendString(nil, d.Schema.Table)
	buf = wal.AppendUvarint(buf, uint64(len(d.Schema.Cols)))
	for _, c := range d.Schema.Cols {
		buf = wal.AppendString(buf, c.Name)
		buf = wal.AppendUvarint(buf, uint64(c.Typ))
		var flags byte
		if c.PrimaryKey {
			flags |= 1
		}
		if c.NotNull {
			flags |= 2
		}
		if c.Unique {
			flags |= 4
		}
		buf = append(buf, flags)
	}
	buf = wal.AppendUvarint(buf, uint64(len(d.Indexes)))
	for _, idx := range d.Indexes {
		buf = wal.AppendString(buf, idx.Name)
		buf = wal.AppendString(buf, idx.Col)
		if idx.Unique {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = wal.AppendUvarint(buf, uint64(len(d.Rows)))
	for _, r := range d.Rows {
		for _, v := range r {
			buf = appendValue(buf, v)
		}
	}
	return buf
}

// decodeTableImage parses a checkpoint frame payload back into a table dump.
func decodeTableImage(data []byte) (TableDump, error) {
	var d TableDump
	table, rest, err := wal.TakeString(data)
	if err != nil {
		return d, err
	}
	ncols, rest, err := wal.Uvarint(rest)
	if err != nil {
		return d, err
	}
	cols := make([]Column, ncols)
	for i := range cols {
		if cols[i].Name, rest, err = wal.TakeString(rest); err != nil {
			return d, err
		}
		var typ uint64
		if typ, rest, err = wal.Uvarint(rest); err != nil {
			return d, err
		}
		cols[i].Typ = Type(typ)
		if len(rest) == 0 {
			return d, fmt.Errorf("sqldb: truncated checkpoint column flags")
		}
		flags := rest[0]
		rest = rest[1:]
		cols[i].PrimaryKey = flags&1 != 0
		cols[i].NotNull = flags&2 != 0
		cols[i].Unique = flags&4 != 0
	}
	if d.Schema, err = NewSchema(table, cols); err != nil {
		return d, err
	}
	nidx, rest, err := wal.Uvarint(rest)
	if err != nil {
		return d, err
	}
	d.Indexes = make([]IndexDef, nidx)
	for i := range d.Indexes {
		if d.Indexes[i].Name, rest, err = wal.TakeString(rest); err != nil {
			return d, err
		}
		if d.Indexes[i].Col, rest, err = wal.TakeString(rest); err != nil {
			return d, err
		}
		if len(rest) == 0 {
			return d, fmt.Errorf("sqldb: truncated checkpoint index flags")
		}
		d.Indexes[i].Unique = rest[0] != 0
		rest = rest[1:]
	}
	nrows, rest, err := wal.Uvarint(rest)
	if err != nil {
		return d, err
	}
	d.Rows = make([]Row, nrows)
	for i := range d.Rows {
		row := make(Row, ncols)
		for j := range row {
			if row[j], rest, err = takeValue(rest); err != nil {
				return d, err
			}
		}
		d.Rows[i] = row
	}
	return d, nil
}

// appendValue serialises one value.
func appendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Typ))
	switch v.Typ {
	case TypeInt:
		buf = binary.AppendVarint(buf, v.Int)
	case TypeFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float))
	case TypeText:
		buf = wal.AppendString(buf, v.Str)
	case TypeBool:
		if v.Bool {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// takeValue parses one value, returning the remaining bytes.
func takeValue(buf []byte) (Value, []byte, error) {
	if len(buf) == 0 {
		return Null, nil, fmt.Errorf("sqldb: truncated checkpoint value")
	}
	typ := Type(buf[0])
	buf = buf[1:]
	switch typ {
	case TypeNull:
		return Null, buf, nil
	case TypeInt:
		v, n := binary.Varint(buf)
		if n <= 0 {
			return Null, nil, fmt.Errorf("sqldb: bad checkpoint int")
		}
		return NewInt(v), buf[n:], nil
	case TypeFloat:
		if len(buf) < 8 {
			return Null, nil, fmt.Errorf("sqldb: truncated checkpoint float")
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf))), buf[8:], nil
	case TypeText:
		s, rest, err := wal.TakeString(buf)
		if err != nil {
			return Null, nil, err
		}
		return NewText(s), rest, nil
	case TypeBool:
		if len(buf) < 1 {
			return Null, nil, fmt.Errorf("sqldb: truncated checkpoint bool")
		}
		return NewBool(buf[0] != 0), buf[1:], nil
	default:
		return Null, nil, fmt.Errorf("sqldb: unknown checkpoint value type %d", typ)
	}
}
