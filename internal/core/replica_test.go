package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdp/internal/sqldb"
)

// populate creates two tables with n rows each in db "app".
func populate(t *testing.T, c *Cluster, n int) {
	t.Helper()
	clusterExec(t, c, "CREATE TABLE a (id INT PRIMARY KEY, v INT)")
	clusterExec(t, c, "CREATE TABLE b (id INT PRIMARY KEY, v INT)")
	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := tx.Exec(fmt.Sprintf("INSERT INTO a VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(fmt.Sprintf("INSERT INTO b VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateReplicaBasic(t *testing.T) {
	c := newTestCluster(t, 3, Options{Replicas: 2})
	populate(t, c, 100)

	reps, _ := c.Replicas("app")
	target := ""
	for _, id := range c.MachineIDs() {
		if !contains(reps, id) {
			target = id
		}
	}
	if err := c.CreateReplica("app", target); err != nil {
		t.Fatal(err)
	}
	reps, _ = c.Replicas("app")
	if len(reps) != 3 || !contains(reps, target) {
		t.Fatalf("replicas = %v", reps)
	}
	m, _ := c.Machine(target)
	res, err := m.Engine().Exec("app", "SELECT COUNT(*) FROM a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 100 {
		t.Errorf("target copy has %v rows", res.Rows[0][0])
	}
}

func TestCreateReplicaErrors(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2})
	populate(t, c, 10)
	reps, _ := c.Replicas("app")
	if err := c.CreateReplica("app", reps[0]); err == nil {
		t.Error("replica on hosting machine succeeded")
	}
	if err := c.CreateReplica("nope", "m1"); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("err = %v", err)
	}
	if err := c.CreateReplica("app", "m99"); !errors.Is(err, ErrNoMachine) {
		t.Errorf("err = %v", err)
	}
}

// TestCreateReplicaOnlineConsistency runs a write workload concurrently with
// replica creation and verifies the new replica converges to the same state
// as the originals — the correctness claim of Theorem 3.
func TestCreateReplicaOnlineConsistency(t *testing.T) {
	for _, gran := range []sqldb.DumpGranularity{sqldb.GranularityTable, sqldb.GranularityDatabase} {
		t.Run(gran.String(), func(t *testing.T) {
			c := newTestCluster(t, 3, Options{Replicas: 2, CopyGranularity: gran})
			populate(t, c, 300)

			stop := make(chan struct{})
			var rejected, applied atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					i := 0
					for {
						select {
						case <-stop:
							return
						default:
						}
						i++
						id := (seed*97 + i*31) % 300
						tbl := "a"
						if i%2 == 0 {
							tbl = "b"
						}
						_, err := c.Exec("app", fmt.Sprintf("UPDATE %s SET v = v + 1 WHERE id = %d", tbl, id))
						switch {
						case err == nil:
							applied.Add(1)
						case IsRejection(err):
							rejected.Add(1)
						}
					}
				}(w)
			}

			reps, _ := c.Replicas("app")
			target := ""
			for _, id := range c.MachineIDs() {
				if !contains(reps, id) {
					target = id
				}
			}
			if err := c.CreateReplica("app", target); err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()

			// All three replicas must agree on the full content checksum.
			reps, _ = c.Replicas("app")
			if len(reps) != 3 {
				t.Fatalf("replicas = %v", reps)
			}
			type sum struct{ a, b int64 }
			var sums []sum
			for _, id := range reps {
				m, _ := c.Machine(id)
				ra, err := m.Engine().Exec("app", "SELECT SUM(v), COUNT(*) FROM a")
				if err != nil {
					t.Fatal(err)
				}
				rb, err := m.Engine().Exec("app", "SELECT SUM(v), COUNT(*) FROM b")
				if err != nil {
					t.Fatal(err)
				}
				if ra.Rows[0][1].Int != 300 || rb.Rows[0][1].Int != 300 {
					t.Fatalf("machine %s row counts: a=%v b=%v", id, ra.Rows[0][1], rb.Rows[0][1])
				}
				sums = append(sums, sum{a: ra.Rows[0][0].Int, b: rb.Rows[0][0].Int})
			}
			for i := 1; i < len(sums); i++ {
				if sums[i] != sums[0] {
					t.Errorf("replica %s diverged: %v vs %v", reps[i], sums[i], sums[0])
				}
			}
			t.Logf("granularity=%s applied=%d rejected=%d", gran, applied.Load(), rejected.Load())
			if gran == sqldb.GranularityDatabase && rejected.Load() == 0 && applied.Load() > 0 {
				// Database-granularity copies reject all writes during the
				// copy; with a concurrent writer some rejections are
				// overwhelmingly likely, but don't fail on scheduling luck.
				t.Log("warning: no rejections observed during database-granularity copy")
			}
		})
	}
}

func TestCopyInProgressExcludesSecondCopy(t *testing.T) {
	c := newTestCluster(t, 4, Options{Replicas: 2})
	populate(t, c, 50)
	reps, _ := c.Replicas("app")
	var free []string
	for _, id := range c.MachineIDs() {
		if !contains(reps, id) {
			free = append(free, id)
		}
	}
	// Install a copy state as CreateReplica would: a concurrent second
	// replica creation must be refused.
	c.mu.Lock()
	ds := c.dbs["app"]
	ds.copying = &copyState{target: free[0], copied: map[string]bool{}}
	c.mu.Unlock()
	if err := c.CreateReplica("app", free[1]); !errors.Is(err, ErrCopyInProgress) {
		t.Errorf("second copy err = %v, want ErrCopyInProgress", err)
	}
	c.mu.Lock()
	ds.copying = nil
	c.mu.Unlock()
	// With the state cleared, the copy proceeds normally.
	if err := c.CreateReplica("app", free[1]); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Replicas("app"); len(got) != 3 {
		t.Errorf("replicas = %v", got)
	}
}

func TestFailMachineRemovesReplicas(t *testing.T) {
	c := newTestCluster(t, 3, Options{Replicas: 2})
	populate(t, c, 50)
	reps, _ := c.Replicas("app")
	affected, err := c.FailMachine(reps[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != "app" {
		t.Errorf("affected = %v", affected)
	}
	reps2, _ := c.Replicas("app")
	if len(reps2) != 1 || reps2[0] != reps[1] {
		t.Errorf("replicas after failure = %v", reps2)
	}
	// The database keeps serving from the survivor.
	res := clusterExec(t, c, "SELECT COUNT(*) FROM a")
	if res.Rows[0][0].Int != 50 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if live := c.LiveMachineIDs(); len(live) != 2 {
		t.Errorf("live = %v", live)
	}
}

func TestRecoveryRestoresReplicationFactor(t *testing.T) {
	c := NewCluster("rec", Options{Replicas: 2})
	if _, err := c.AddMachines(4); err != nil {
		t.Fatal(err)
	}
	// Several databases, so the failed machine hosts more than one.
	for i := 0; i < 4; i++ {
		db := fmt.Sprintf("db%d", i)
		if err := c.CreateDatabase(db); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec(db, "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 50; j++ {
			if _, err := c.Exec(db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", j, j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	affected, err := c.FailMachine("m1")
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) == 0 {
		t.Skip("m1 hosted no databases (placement luck)")
	}
	report := c.RecoverDatabases(affected, 2)
	if len(report.Failed) != 0 {
		t.Fatalf("recovery failures: %v", report.Failed)
	}
	if len(report.Recovered) != len(affected) {
		t.Errorf("recovered %v, want %v", report.Recovered, affected)
	}
	for _, db := range affected {
		reps, _ := c.Replicas(db)
		if len(reps) != 2 {
			t.Errorf("%s has %d replicas after recovery", db, len(reps))
		}
		for _, id := range reps {
			m, _ := c.Machine(id)
			res, err := m.Engine().Exec(db, "SELECT COUNT(*) FROM t")
			if err != nil {
				t.Fatal(err)
			}
			if res.Rows[0][0].Int != 50 {
				t.Errorf("%s on %s has %v rows", db, id, res.Rows[0][0])
			}
		}
	}
}

func TestProcessPairTakeOverCommitting(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 0)")

	// Crash the primary after the commit decision.
	c.SetCrashHook(func(stage CommitStage, _ uint64) bool { return stage == StageCommitting })
	tx, _ := c.Begin("app")
	if _, err := tx.Exec("UPDATE t SET v = 7 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrMachineFailed) {
		t.Fatalf("commit err = %v, want primary-failure", err)
	}
	if c.InTransit() != 1 {
		t.Fatalf("in transit = %d", c.InTransit())
	}
	committed, rolledBack := c.TakeOver()
	if committed != 1 || rolledBack != 0 {
		t.Fatalf("takeover = (%d, %d)", committed, rolledBack)
	}
	// The decision survived: the update is durable on all replicas.
	res := clusterExec(t, c, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 7 {
		t.Errorf("v = %v, want 7", res.Rows[0][0])
	}
}

func TestProcessPairTakeOverPreparing(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 0)")

	c.SetCrashHook(func(stage CommitStage, _ uint64) bool { return stage == StagePreparing })
	tx, _ := c.Begin("app")
	if _, err := tx.Exec("UPDATE t SET v = 9 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrMachineFailed) {
		t.Fatalf("commit err = %v", err)
	}
	committed, rolledBack := c.TakeOver()
	if committed != 0 || rolledBack != 1 {
		t.Fatalf("takeover = (%d, %d)", committed, rolledBack)
	}
	// No decision was reached: the update must be rolled back everywhere,
	// and locks released so new writers proceed.
	res := clusterExec(t, c, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 0 {
		t.Errorf("v = %v, want 0", res.Rows[0][0])
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Exec("app", "UPDATE t SET v = 1 WHERE id = 1")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after takeover: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write after takeover blocked (locks not released)")
	}
}
