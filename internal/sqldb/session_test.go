package sqldb

import (
	"errors"
	"testing"
	"time"
)

func TestSessionAutocommit(t *testing.T) {
	e := newTestDB(t)
	s := e.Session("app")
	if _, err := s.Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO t VALUES (1, 10)"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec("SELECT v FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 10 {
		t.Errorf("v = %v", res.Rows[0][0])
	}
	if s.InTransaction() {
		t.Error("autocommit left a transaction open")
	}
}

func TestSessionExplicitTransaction(t *testing.T) {
	e := newTestDB(t)
	s := e.Session("app")
	mustSess := func(sql string) {
		t.Helper()
		if _, err := s.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustSess("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustSess("BEGIN")
	if !s.InTransaction() {
		t.Fatal("BEGIN did not open a transaction")
	}
	mustSess("INSERT INTO t VALUES (1, 1)")
	mustSess("INSERT INTO t VALUES (2, 2)")
	mustSess("COMMIT")
	if s.InTransaction() {
		t.Fatal("COMMIT left the transaction open")
	}
	res, _ := s.Exec("SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int != 2 {
		t.Errorf("count = %v", res.Rows[0][0])
	}

	mustSess("BEGIN")
	mustSess("DELETE FROM t WHERE id = 1")
	mustSess("ROLLBACK")
	res, _ = s.Exec("SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int != 2 {
		t.Errorf("count after rollback = %v", res.Rows[0][0])
	}
}

func TestSessionTransactionControlErrors(t *testing.T) {
	e := newTestDB(t)
	s := e.Session("app")
	if _, err := s.Exec("COMMIT"); err == nil {
		t.Error("COMMIT without BEGIN succeeded")
	}
	if _, err := s.Exec("ROLLBACK"); err == nil {
		t.Error("ROLLBACK without BEGIN succeeded")
	}
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("BEGIN"); err == nil {
		t.Error("nested BEGIN succeeded")
	}
	s.Close()
	if s.InTransaction() {
		t.Error("Close left the transaction open")
	}
}

func TestSessionDeadlockClearsTransaction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LockTimeout = 50 * time.Millisecond
	e := NewEngine(cfg)
	if err := e.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	s1, s2 := e.Session("app"), e.Session("app")
	if _, err := s1.Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("INSERT INTO t VALUES (1, 0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("UPDATE t SET v = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	_, err := s2.Exec("UPDATE t SET v = 2 WHERE id = 1")
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v", err)
	}
	if s2.InTransaction() {
		t.Error("aborted transaction still open in session")
	}
	if _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
}
