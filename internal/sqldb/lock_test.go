package sqldb

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// newLockFixture returns a lock manager and a transaction factory backed by
// a throwaway engine.
func newLockFixture(t *testing.T, timeout time.Duration) (*lockManager, func() *Txn) {
	t.Helper()
	e := NewEngine(Config{LockTimeout: timeout})
	if err := e.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	lm := e.locks
	return lm, func() *Txn {
		txn, err := e.Begin("d")
		if err != nil {
			t.Fatal(err)
		}
		return txn
	}
}

func TestLockCompatMatrix(t *testing.T) {
	// The standard multi-granularity compatibility matrix.
	want := map[[2]LockMode]bool{
		{LockIS, LockIS}: true, {LockIS, LockIX}: true, {LockIS, LockS}: true, {LockIS, LockX}: false,
		{LockIX, LockIS}: true, {LockIX, LockIX}: true, {LockIX, LockS}: false, {LockIX, LockX}: false,
		{LockS, LockIS}: true, {LockS, LockIX}: false, {LockS, LockS}: true, {LockS, LockX}: false,
		{LockX, LockIS}: false, {LockX, LockIX}: false, {LockX, LockS}: false, {LockX, LockX}: false,
	}
	for pair, compat := range want {
		if lockCompat[pair[0]][pair[1]] != compat {
			t.Errorf("compat[%s][%s] = %v, want %v", pair[0], pair[1], lockCompat[pair[0]][pair[1]], compat)
		}
	}
}

func TestLockSharedConcurrent(t *testing.T) {
	lm, newTxn := newLockFixture(t, time.Second)
	id := lockID{Table: "d/t", Key: "1"}
	t1, t2 := newTxn(), newTxn()
	if err := lm.acquire(t1, id, LockS); err != nil {
		t.Fatal(err)
	}
	if err := lm.acquire(t2, id, LockS); err != nil {
		t.Fatal(err)
	}
	lm.releaseAll(t1)
	lm.releaseAll(t2)
}

func TestLockExclusiveBlocks(t *testing.T) {
	lm, newTxn := newLockFixture(t, time.Second)
	id := lockID{Table: "d/t", Key: "1"}
	t1, t2 := newTxn(), newTxn()
	if err := lm.acquire(t1, id, LockX); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- lm.acquire(t2, id, LockX) }()
	select {
	case err := <-got:
		t.Fatalf("second X acquired while first held: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	lm.releaseAll(t1)
	if err := <-got; err != nil {
		t.Fatalf("second X after release: %v", err)
	}
	lm.releaseAll(t2)
}

func TestLockUpgradeSToX(t *testing.T) {
	lm, newTxn := newLockFixture(t, time.Second)
	id := lockID{Table: "d/t", Key: "1"}
	t1 := newTxn()
	if err := lm.acquire(t1, id, LockS); err != nil {
		t.Fatal(err)
	}
	// Sole holder: the upgrade succeeds immediately.
	if err := lm.acquire(t1, id, LockX); err != nil {
		t.Fatal(err)
	}
	// Another S request must now block.
	t2 := newTxn()
	got := make(chan error, 1)
	go func() { got <- lm.acquire(t2, id, LockS) }()
	select {
	case err := <-got:
		t.Fatalf("S granted against upgraded X: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	lm.releaseAll(t1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	lm.releaseAll(t2)
}

func TestLockUpgradeDeadlockDetected(t *testing.T) {
	// Two transactions holding S both requesting X is the classic upgrade
	// deadlock; one of them must be aborted, not both stuck.
	lm, newTxn := newLockFixture(t, time.Second)
	id := lockID{Table: "d/t", Key: "1"}
	t1, t2 := newTxn(), newTxn()
	if err := lm.acquire(t1, id, LockS); err != nil {
		t.Fatal(err)
	}
	if err := lm.acquire(t2, id, LockS); err != nil {
		t.Fatal(err)
	}
	type labelled struct {
		txn *Txn
		err error
	}
	errs := make(chan labelled, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); errs <- labelled{t1, lm.acquire(t1, id, LockX)} }()
	go func() { defer wg.Done(); errs <- labelled{t2, lm.acquire(t2, id, LockX)} }()

	// Exactly one of them must be chosen as the deadlock victim; releasing
	// the victim unblocks the survivor's upgrade.
	deadlocked := 0
	for i := 0; i < 2; i++ {
		got := <-errs
		if errors.Is(got.err, ErrDeadlock) {
			deadlocked++
			lm.releaseAll(got.txn)
		} else if got.err != nil {
			t.Fatalf("unexpected error for %v: %v", got.txn, got.err)
		}
	}
	wg.Wait()
	if deadlocked == 0 {
		t.Fatal("upgrade deadlock not detected")
	}
	lm.releaseAll(t1)
	lm.releaseAll(t2)
}

func TestLockReleaseSharedKeepsExclusive(t *testing.T) {
	lm, newTxn := newLockFixture(t, 50*time.Millisecond)
	sID := lockID{Table: "d/t", Key: "s"}
	xID := lockID{Table: "d/t", Key: "x"}
	t1 := newTxn()
	if err := lm.acquire(t1, sID, LockS); err != nil {
		t.Fatal(err)
	}
	if err := lm.acquire(t1, xID, LockX); err != nil {
		t.Fatal(err)
	}
	lm.releaseShared(t1)

	t2 := newTxn()
	// The S lock is gone: an X on it succeeds.
	if err := lm.acquire(t2, sID, LockX); err != nil {
		t.Fatalf("X on released S object: %v", err)
	}
	// The X lock is retained: another X times out.
	if err := lm.acquire(t2, xID, LockX); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("X on retained X object: %v", err)
	}
	lm.releaseAll(t1)
	lm.releaseAll(t2)
}

func TestLockFIFOFairness(t *testing.T) {
	// A writer queued behind a reader must not be starved by later readers:
	// X arrives while S held, then more S requests arrive — they must wait
	// behind the X.
	lm, newTxn := newLockFixture(t, time.Second)
	id := lockID{Table: "d/t", Key: "1"}
	r1, w, r2 := newTxn(), newTxn(), newTxn()
	if err := lm.acquire(r1, id, LockS); err != nil {
		t.Fatal(err)
	}
	wGot := make(chan error, 1)
	go func() { wGot <- lm.acquire(w, id, LockX) }()
	time.Sleep(10 * time.Millisecond) // let the X enqueue
	r2Got := make(chan error, 1)
	go func() { r2Got <- lm.acquire(r2, id, LockS) }()
	select {
	case <-r2Got:
		t.Fatal("late reader jumped the queued writer")
	case <-time.After(30 * time.Millisecond):
	}
	lm.releaseAll(r1)
	if err := <-wGot; err != nil {
		t.Fatalf("writer: %v", err)
	}
	lm.releaseAll(w)
	if err := <-r2Got; err != nil {
		t.Fatalf("late reader: %v", err)
	}
	lm.releaseAll(r2)
}

func TestLockThreeWayDeadlock(t *testing.T) {
	lm, newTxn := newLockFixture(t, time.Second)
	a := lockID{Table: "d/t", Key: "a"}
	b := lockID{Table: "d/t", Key: "b"}
	c := lockID{Table: "d/t", Key: "c"}
	t1, t2, t3 := newTxn(), newTxn(), newTxn()
	for _, pair := range []struct {
		txn *Txn
		id  lockID
	}{{t1, a}, {t2, b}, {t3, c}} {
		if err := lm.acquire(pair.txn, pair.id, LockX); err != nil {
			t.Fatal(err)
		}
	}
	t1Got := make(chan error, 1)
	t2Got := make(chan error, 1)
	go func() { t1Got <- lm.acquire(t1, b, LockX) }()
	go func() { t2Got <- lm.acquire(t2, c, LockX) }()
	time.Sleep(20 * time.Millisecond)
	// Closing the cycle must be detected immediately.
	err := lm.acquire(t3, a, LockX)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("cycle close err = %v, want ErrDeadlock", err)
	}
	// Aborting the victim unblocks t2 (waiting on c); releasing t2 then
	// unblocks t1 (waiting on b) — strict 2PL chains resolve in order.
	lm.releaseAll(t3)
	if err := <-t2Got; err != nil {
		t.Fatalf("t2 after victim abort: %v", err)
	}
	lm.releaseAll(t2)
	if err := <-t1Got; err != nil {
		t.Fatalf("t1 after t2 release: %v", err)
	}
	lm.releaseAll(t1)
}

func TestLockReacquireSameModeIsNoop(t *testing.T) {
	lm, newTxn := newLockFixture(t, time.Second)
	id := lockID{Table: "d/t", Key: "1"}
	t1 := newTxn()
	for i := 0; i < 3; i++ {
		if err := lm.acquire(t1, id, LockS); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(t1.heldLocksForTest()); n != 1 {
		t.Errorf("held %d locks, want 1", n)
	}
	lm.releaseAll(t1)
}

func TestUpgradeModeLattice(t *testing.T) {
	cases := []struct {
		a, b, want LockMode
	}{
		{LockIS, LockIS, LockIS},
		{LockIS, LockIX, LockIX},
		{LockIS, LockS, LockS},
		{LockS, LockX, LockX},
		{LockS, LockIX, LockX}, // SIX approximated as X
		{LockIX, LockS, LockX},
		{LockIX, LockX, LockX},
	}
	for _, c := range cases {
		if got := upgradeMode(c.a, c.b); got != c.want {
			t.Errorf("upgradeMode(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
		// Symmetric.
		if got := upgradeMode(c.b, c.a); got != c.want {
			t.Errorf("upgradeMode(%s, %s) = %s, want %s", c.b, c.a, got, c.want)
		}
	}
}

// heldLocksForTest exposes the held set under the lock-manager mutex.
func (t *Txn) heldLocksForTest() []lockID {
	t.engine.locks.mu.Lock()
	defer t.engine.locks.mu.Unlock()
	return t.heldLocks()
}
